package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/flowsim"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/topology"
)

// ScaleParams configures the flow-level §6.3 experiments (Figures 15
// and 16). The paper models 32 K servers; the default here is scaled
// down with the same three-tier 1:5 oversubscription.
type ScaleParams struct {
	Pods, RacksPerPod, ServersPerRack, SlotsPerServer int
	Oversub                                           float64
	AvgVMs                                            int
	DurationSec, EpochSec                             float64
	// PermutationX is class-B's traffic pattern (Figure 16b sweeps
	// it).
	PermutationX float64
	Seed         uint64
}

// DefaultScaleParams returns a laptop-scale §6.3 configuration.
func DefaultScaleParams() ScaleParams {
	return ScaleParams{
		Pods:           2,
		RacksPerPod:    5,
		ServersPerRack: 20,
		SlotsPerServer: 4,
		Oversub:        5,
		AvgVMs:         12,
		DurationSec:    800,
		EpochSec:       2,
		PermutationX:   1,
		Seed:           21,
	}
}

func (p ScaleParams) tree() (*topology.Tree, error) {
	return topology.New(topology.Config{
		Pods:           p.Pods,
		RacksPerPod:    p.RacksPerPod,
		ServersPerRack: p.ServersPerRack,
		SlotsPerServer: p.SlotsPerServer,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    p.Oversub,
		PodOversub:     p.Oversub,
	})
}

func (p ScaleParams) classes() []flowsim.ClassConfig {
	return []flowsim.ClassConfig{
		{ // class A (Table 3)
			Fraction: 0.5,
			Guarantee: tenant.Guarantee{
				BandwidthBps: 0.25 * gbps,
				BurstBytes:   15e3,
				DelayBound:   1e-3,
				BurstRateBps: 1 * gbps,
			},
			AllToOne:   true,
			FlowBytes:  50e6,
			ComputeSec: 5,
		},
		{ // class B: data-parallel jobs whose transfer time at the
			// guaranteed rate dominates their compute time, so network
			// performance governs job duration (and hence slot
			// occupancy — the mechanism behind Figure 15's crossover).
			Fraction: 0.5,
			Guarantee: tenant.Guarantee{
				BandwidthBps: 2 * gbps,
				BurstBytes:   1.5e3,
				BurstRateBps: 2 * gbps,
			},
			PermutationX: p.PermutationX,
			FlowBytes:    10e9,
			ComputeSec:   5,
		},
	}
}

// ScalePoint is one (placer, occupancy) outcome.
type ScalePoint struct {
	Placer    string
	Occupancy float64
	Result    flowsim.Result
}

// RunScalePoint runs one flow-level simulation.
func RunScalePoint(p ScaleParams, placerName string, occupancy float64) (ScalePoint, error) {
	tree, err := p.tree()
	if err != nil {
		return ScalePoint{}, err
	}
	var placer placement.Algorithm
	mode := flowsim.Reserved
	switch placerName {
	case "silo":
		placer = placement.NewManager(tree, placement.Options{})
	case "oktopus":
		placer = placement.NewOktopus(tree)
	case "locality":
		placer = placement.NewLocality(tree)
		mode = flowsim.FairShare
	default:
		return ScalePoint{}, fmt.Errorf("unknown placer %q", placerName)
	}
	// Calibrate the arrival rate so every placer is compared at the
	// same ACHIEVED occupancy (the paper's x-axis): a placer whose
	// jobs finish faster (work conservation) or slower (reservations)
	// would otherwise sit at a different operating point.
	cfg := flowsim.Config{
		Tree:        tree,
		Placer:      placer,
		Mode:        mode,
		AvgVMs:      p.AvgVMs,
		Classes:     p.classes(),
		Occupancy:   occupancy,
		DurationSec: p.DurationSec,
		EpochSec:    p.EpochSec,
		Seed:        p.Seed,
	}
	res := flowsim.Run(cfg)
	for iter := 0; iter < 4; iter++ {
		if res.AvgOccupancy <= 0 {
			break
		}
		ratio := occupancy / res.AvgOccupancy
		if ratio > 0.95 && ratio < 1.05 {
			break
		}
		if ratio > 3 {
			ratio = 3
		}
		cfg.ArrivalRate = res.ArrivalRateUsed * ratio
		// Placers are stateful; rebuild for each calibration run.
		tree2, err := p.tree()
		if err != nil {
			return ScalePoint{}, err
		}
		cfg.Tree = tree2
		switch placerName {
		case "silo":
			cfg.Placer = placement.NewManager(tree2, placement.Options{})
		case "oktopus":
			cfg.Placer = placement.NewOktopus(tree2)
		default:
			cfg.Placer = placement.NewLocality(tree2)
		}
		res = flowsim.Run(cfg)
	}
	return ScalePoint{Placer: placerName, Occupancy: occupancy, Result: res}, nil
}

// RunFigure15 evaluates admitted-request fractions at the paper's two
// occupancy points for all three placers.
func RunFigure15(p ScaleParams) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, occ := range []float64{0.75, 0.9} {
		for _, placer := range []string{"locality", "oktopus", "silo"} {
			pt, err := RunScalePoint(p, placer, occ)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// RunFigure16a sweeps occupancy for all three placers.
func RunFigure16a(p ScaleParams, occupancies []float64) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, occ := range occupancies {
		for _, placer := range []string{"locality", "oktopus", "silo"} {
			pt, err := RunScalePoint(p, placer, occ)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// RunFigure16b sweeps the Permutation-x density at 90% occupancy.
func RunFigure16b(p ScaleParams, xs []float64) (map[float64][]ScalePoint, error) {
	out := map[float64][]ScalePoint{}
	for _, x := range xs {
		px := p
		px.PermutationX = x
		for _, placer := range []string{"locality", "oktopus", "silo"} {
			pt, err := RunScalePoint(px, placer, 0.9)
			if err != nil {
				return nil, err
			}
			out[x] = append(out[x], pt)
		}
	}
	return out, nil
}

// RenderScalePoints formats Figure-15/16 style rows.
func RenderScalePoints(points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %12s %10s\n",
		"placer", "occupancy", "admit%", "admitA%", "admitB%", "utilization%", "jobs")
	for _, pt := range points {
		r := pt.Result
		fmt.Fprintf(&b, "%-10s %10.2f %10.1f %10.1f %10.1f %12.1f %10d\n",
			pt.Placer, pt.Occupancy,
			100*r.AdmittedFrac(),
			100*r.AdmittedFracClass(0),
			100*r.AdmittedFracClass(1),
			100*r.AvgUtilization,
			r.CompletedJobs)
	}
	return b.String()
}

// PlacementBenchParams configures the placement-manager scalability
// microbenchmark (paper §5: 100 K hosts, mean 49-VM tenants, max
// placement time 1.15 s over 100 K requests).
type PlacementBenchParams struct {
	Pods, RacksPerPod, ServersPerRack, SlotsPerServer int
	AvgVMs                                            int
	Requests                                          int
	Seed                                              uint64
	// Metrics, when non-nil, receives the placement manager's
	// telemetry (admission latency histogram, accept/reject counters,
	// headroom gauges).
	Metrics *obs.Registry
}

// DefaultPlacementBenchParams mirrors the paper's 100 K-host setup at
// a CI-friendly request count.
func DefaultPlacementBenchParams() PlacementBenchParams {
	return PlacementBenchParams{
		Pods:           25,
		RacksPerPod:    40,
		ServersPerRack: 100, // 100,000 hosts
		SlotsPerServer: 8,
		AvgVMs:         49,
		Requests:       2000,
		Seed:           5,
	}
}

// PlacementBenchResult summarizes placement times.
type PlacementBenchResult struct {
	Hosts          int
	Requests       int
	Accepted       int
	MeanNs, MaxNs  int64
	P50Ns, P99Ns   int64
	TotalElapsedNs int64
	// AllocsPerOp is the heap allocations per request over the whole
	// churn loop (place + occasional remove), from runtime.MemStats.
	AllocsPerOp int64
}

// RunPlacementBench measures wall-clock placement time per request on
// a full-scale datacenter, with tenant churn (completed tenants leave
// so the datacenter reaches steady occupancy).
func RunPlacementBench(p PlacementBenchParams) (PlacementBenchResult, error) {
	tree, err := topology.New(topology.Config{
		Pods:           p.Pods,
		RacksPerPod:    p.RacksPerPod,
		ServersPerRack: p.ServersPerRack,
		SlotsPerServer: p.SlotsPerServer,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    5,
		PodOversub:     5,
	})
	if err != nil {
		return PlacementBenchResult{}, err
	}
	m := placement.NewManager(tree, placement.Options{})
	m.EnableMetrics(p.Metrics)
	rng := stats.NewRand(p.Seed)
	times := stats.NewSample(p.Requests)
	res := PlacementBenchResult{Hosts: tree.Servers(), Requests: p.Requests}
	var liveIDs []int
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < p.Requests; i++ {
		vms := int(rng.Exp(float64(p.AvgVMs)))
		if vms < 2 {
			vms = 2
		}
		classA := rng.Float64() < 0.5
		g := tenant.Guarantee{
			BandwidthBps: 0.25 * gbps, BurstBytes: 15e3,
			DelayBound: 1e-3, BurstRateBps: 1 * gbps,
		}
		if !classA {
			g = tenant.Guarantee{BandwidthBps: 2 * gbps, BurstBytes: 1.5e3, BurstRateBps: 2 * gbps}
		}
		spec := tenant.Spec{ID: i + 1, Name: "bench", VMs: vms, Guarantee: g, FaultDomains: 2}
		t0 := time.Now()
		_, err := m.Place(spec)
		dt := time.Since(t0).Nanoseconds()
		times.Add(float64(dt))
		if err == nil {
			res.Accepted++
			liveIDs = append(liveIDs, spec.ID)
		}
		// Churn: remove an old tenant every other request, holding
		// occupancy near steady state.
		if i%2 == 1 && len(liveIDs) > 50 {
			idx := rng.Intn(len(liveIDs))
			_ = m.Remove(liveIDs[idx])
			liveIDs[idx] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
	}
	res.TotalElapsedNs = time.Since(start).Nanoseconds()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	if p.Requests > 0 {
		res.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(p.Requests)
	}
	res.MeanNs = int64(times.Mean())
	res.MaxNs = int64(times.Max())
	res.P50Ns = int64(times.Percentile(50))
	res.P99Ns = int64(times.Percentile(99))
	return res, nil
}

// Render formats the microbenchmark.
func (r PlacementBenchResult) Render() string {
	return fmt.Sprintf(
		"hosts=%d requests=%d accepted=%d mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms total=%.1fs allocs/op=%d\n",
		r.Hosts, r.Requests, r.Accepted,
		float64(r.MeanNs)/1e6, float64(r.P50Ns)/1e6, float64(r.P99Ns)/1e6, float64(r.MaxNs)/1e6,
		float64(r.TotalElapsedNs)/1e9, r.AllocsPerOp)
}
