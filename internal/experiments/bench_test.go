package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseRecord() BenchRecord {
	return BenchRecord{
		Benchmark: "placeub", Hosts: 100000, Requests: 2000, Accepted: 1474,
		MeanNs: 5_000_000, P50Ns: 80_000, P99Ns: 33_000_000, MaxNs: 60_000_000,
		TotalNs: 10_000_000_000, AllocsPerOp: 11_000,
	}
}

func TestBenchRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := baseRecord()
	if err := WriteBenchRecord(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
	if _, err := LoadBenchRecord(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline loaded without error")
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	ds, err := CompareBenchRecords(baseRecord(), baseRecord(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegression(ds) {
		t.Errorf("identical records regressed: %+v", ds)
	}
	if len(ds) != 5 {
		t.Errorf("compared %d metrics, want 5", len(ds))
	}
}

func TestCompareDoctoredBaselineRegresses(t *testing.T) {
	// The acceptance check: doctor the baseline so the "current" run
	// looks slower than tolerance allows, and the gate must trip.
	doctored := baseRecord()
	doctored.MeanNs = doctored.MeanNs / 10
	ds, err := CompareBenchRecords(doctored, baseRecord(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegression(ds) {
		t.Fatalf("10x mean growth not flagged: %+v", ds)
	}
	table := RenderBenchDeltas("placeub", ds, 25)
	if !strings.Contains(table, "REGRESSED") || !strings.Contains(table, "mean_ns") {
		t.Errorf("render missing verdict:\n%s", table)
	}
}

func TestCompareToleranceAndDirection(t *testing.T) {
	base := baseRecord()

	// Growth inside tolerance passes.
	cur := base
	cur.MeanNs = base.MeanNs * 110 / 100
	if ds, _ := CompareBenchRecords(base, cur, 25); AnyRegression(ds) {
		t.Errorf("+10%% within 25%% tolerance regressed: %+v", ds)
	}

	// Improvement always passes, however large.
	cur = base
	cur.MeanNs, cur.P99Ns, cur.AllocsPerOp = 1, 1, 0
	if ds, _ := CompareBenchRecords(base, cur, 25); AnyRegression(ds) {
		t.Error("large improvement flagged as regression")
	}

	// Allocation growth past tolerance gates.
	cur = base
	cur.AllocsPerOp = base.AllocsPerOp * 2
	if ds, _ := CompareBenchRecords(base, cur, 25); !AnyRegression(ds) {
		t.Error("2x allocs/op not flagged")
	}

	// A zero baseline growing to nonzero gates (the zero-alloc pledge).
	base.AllocsPerOp = 0
	cur = base
	cur.AllocsPerOp = 3
	if ds, _ := CompareBenchRecords(base, cur, 25); !AnyRegression(ds) {
		t.Error("0 -> 3 allocs/op not flagged")
	}

	// max_ns and p50_ns are context, not gates.
	base = baseRecord()
	cur = base
	cur.MaxNs, cur.P50Ns = base.MaxNs*10, base.P50Ns*10
	if ds, _ := CompareBenchRecords(base, cur, 25); AnyRegression(ds) {
		t.Error("non-gating max/p50 growth tripped the gate")
	}
}

func TestCompareRefusesMismatch(t *testing.T) {
	other := baseRecord()
	other.Benchmark = "pacerub"
	if _, err := CompareBenchRecords(baseRecord(), other, 25); err == nil {
		t.Error("benchmark-name mismatch accepted")
	}
	other = baseRecord()
	other.Requests = 17
	if _, err := CompareBenchRecords(baseRecord(), other, 25); err == nil {
		t.Error("workload mismatch accepted")
	}
}

func TestPlacementRecordMapping(t *testing.T) {
	r := PlacementBenchResult{
		Hosts: 7, Requests: 8, Accepted: 5, MeanNs: 1, P50Ns: 2, P99Ns: 3,
		MaxNs: 4, TotalElapsedNs: 9, AllocsPerOp: 6,
	}
	rec := r.Record()
	want := BenchRecord{
		Benchmark: "placeub", Hosts: 7, Requests: 8, Accepted: 5,
		MeanNs: 1, P50Ns: 2, P99Ns: 3, MaxNs: 4, TotalNs: 9, AllocsPerOp: 6,
	}
	if rec != want {
		t.Errorf("Record() = %+v, want %+v", rec, want)
	}
}

func TestRunPacerBenchSmoke(t *testing.T) {
	rec := RunPacerBench(PacerBenchParams{
		LineRateBps:   10 * gbps,
		RateLimitGbps: 8,
		WireSeconds:   0.001,
		PayloadBytes:  1500,
		Reps:          3,
	})
	if rec.Benchmark != "pacerub" {
		t.Errorf("benchmark = %q", rec.Benchmark)
	}
	if rec.Requests <= 0 || rec.Accepted <= 0 || rec.Accepted > rec.Requests {
		t.Errorf("frame counts: requests=%d accepted=%d", rec.Requests, rec.Accepted)
	}
	if rec.MeanNs <= 0 || rec.MaxNs < rec.P50Ns || rec.TotalNs <= 0 {
		t.Errorf("timing fields: %+v", rec)
	}
}

func TestRunNetsimBenchSmoke(t *testing.T) {
	p := NetsimBenchParams{PacketsPerHost: 50, Reps: 3}
	rec, err := RunNetsimBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Benchmark != "netsimub" || rec.Hosts != 8 {
		t.Errorf("header: %+v", rec)
	}
	if want := p.Reps * p.PacketsPerHost * rec.Hosts; rec.Requests != want {
		t.Errorf("requests = %d, want %d", rec.Requests, want)
	}
	// The permutation paces at line rate, so everything injected is
	// delivered once the fabric drains.
	if rec.Accepted != rec.Requests {
		t.Errorf("delivered %d of %d packets", rec.Accepted, rec.Requests)
	}
	if rec.MeanNs <= 0 {
		t.Errorf("mean = %d", rec.MeanNs)
	}
}
