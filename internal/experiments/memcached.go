package experiments

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

const (
	mbps = 1e6 / 8
	gbps = 1e9 / 8
)

// MemcachedParams configures the §6.1 testbed reproduction: five
// servers under one 10 GbE switch, tenant A (memcached, 15 VMs, ETC
// workload) and tenant B (netperf bulk, 15 VMs), three VMs of each per
// server.
type MemcachedParams struct {
	// Servers in the rack (paper: 5).
	Servers int
	// VMsPerTenantPerServer (paper: 3).
	VMsPerTenantPerServer int
	// DurationSec of simulated load.
	DurationSec float64
	// TargetABps is tenant A's aggregate offered load (paper: average
	// bandwidth requirement 210 Mbps).
	TargetABps float64
	// BulkMsgBytes is the netperf message size.
	BulkMsgBytes int
	// DynamicHoseEpochNs, when > 0, replaces the static hose
	// coordination with the EyeQ-style dynamic loop at that epoch.
	DynamicHoseEpochNs int64
	Seed               uint64
}

// DefaultMemcachedParams returns the paper's configuration at a
// simulation-friendly duration.
func DefaultMemcachedParams() MemcachedParams {
	return MemcachedParams{
		Servers:               5,
		VMsPerTenantPerServer: 3,
		DurationSec:           0.5,
		TargetABps:            210 * mbps,
		BulkMsgBytes:          1 << 20,
		DynamicHoseEpochNs:    1_000_000, // EyeQ-style loop at 1 ms
		Seed:                  1,
	}
}

// MemcachedScenario is one line of Figure 11.
type MemcachedScenario struct {
	Name string
	// WithBulk runs tenant B alongside.
	WithBulk bool
	// Paced applies Silo pacing with the given tenant guarantees
	// (Table 2); nil means plain TCP.
	GuaranteeA *tenant.Guarantee
	GuaranteeB *tenant.Guarantee
}

// Table2Guarantees returns the paper's req-1..3 guarantee pairs
// (Table 2), parameterized by the A-tenant bandwidth multiplier.
func Table2Guarantees(req int) (a, b tenant.Guarantee) {
	var aB float64
	switch req {
	case 1:
		aB = 210 * mbps
	case 2:
		aB = 315 * mbps
	default:
		aB = 420 * mbps
	}
	// Per host: 3·(B_A + B_B) = 10 Gbps (paper Table 2 note).
	bB := 10*gbps/3 - aB
	a = tenant.Guarantee{BandwidthBps: aB, BurstBytes: 1.5e3, DelayBound: 1e-3, BurstRateBps: 1 * gbps}
	b = tenant.Guarantee{BandwidthBps: bB, BurstBytes: 1.5e3, BurstRateBps: bB}
	return a, b
}

// MemcachedResult is one scenario's outcome.
type MemcachedResult struct {
	Scenario string
	// Latencies are memcached request latencies in µs.
	Latencies *stats.Sample
	// RequestsCompleted and offered.
	RequestsCompleted, RequestsIssued int
	// BulkBytes delivered to tenant-B receivers.
	BulkBytes int64
	// SimSeconds of load.
	SimSeconds float64
	// GuaranteeUs is Silo's message latency guarantee for the ETC
	// request/response pair in µs (0 for unpaced scenarios).
	GuaranteeUs float64
}

// MemcachedThroughputRps returns completed requests per second.
func (r MemcachedResult) MemcachedThroughputRps() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.RequestsCompleted) / r.SimSeconds
}

// BulkThroughputBps returns tenant B's delivered bandwidth.
func (r MemcachedResult) BulkThroughputBps() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.BulkBytes) / r.SimSeconds
}

// testbedTree builds the 1-rack, 5-server, 10 GbE testbed.
func testbedTree(servers, slots int) (*topology.Tree, error) {
	return topology.New(topology.Config{
		Pods:           1,
		RacksPerPod:    1,
		ServersPerRack: servers,
		SlotsPerServer: slots,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    1,
		PodOversub:     1,
	})
}

// RunMemcachedScenario runs one Figure-11 line.
func RunMemcachedScenario(p MemcachedParams, sc MemcachedScenario) (MemcachedResult, error) {
	tree, err := testbedTree(p.Servers, 2*p.VMsPerTenantPerServer)
	if err != nil {
		return MemcachedResult{}, err
	}
	nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
	f := transport.NewFabric(nw)
	rng := stats.NewRand(p.Seed)

	nA := p.Servers * p.VMsPerTenantPerServer
	// Fixed testbed placement: VM i of each tenant on server i/3.
	mkPlacement := func(spec tenant.Spec) *tenant.Placement {
		servers := make([]int, spec.VMs)
		for i := range servers {
			servers[i] = i / p.VMsPerTenantPerServer
		}
		return &tenant.Placement{Spec: spec, Servers: servers}
	}

	scheme := SchemeTCP
	specA := tenant.Spec{ID: 1, Name: "A", VMs: nA}
	specB := tenant.Spec{ID: 2, Name: "B", VMs: nA}
	if sc.GuaranteeA != nil {
		scheme = SchemeSilo
		specA.Guarantee = *sc.GuaranteeA
		specB.Guarantee = *sc.GuaranteeB
	}
	depA := DeployTenant(nw, f, scheme, specA, mkPlacement(specA), 1000)
	var depB *Deployment
	if sc.WithBulk {
		depB = DeployTenant(nw, f, scheme, specB, mkPlacement(specB), 2000)
	}

	res := MemcachedResult{
		Scenario:   sc.Name,
		Latencies:  stats.NewSample(1 << 16),
		SimSeconds: p.DurationSec,
	}
	if sc.GuaranteeA != nil {
		// Request + response both within the burst allowance: the
		// guarantee is (reqBytes+respMax)/Bmax + 2d.
		g := *sc.GuaranteeA
		res.GuaranteeUs = (g.MessageLatencyBound(100) + g.MessageLatencyBound(1024)) * 1e6
	}

	// Tenant A: VM 0 is the memcached server; the rest are clients.
	serverVM := depA.VMIDs[0]
	serverEp := depA.Endpoints[0]
	type reqInfo struct {
		clientVM  int
		respBytes int
		issued    int64
	}
	reqByID := map[uint64]*reqInfo{}
	respByID := map[uint64]*reqInfo{}

	serverEp.OnMessage = func(srcVM int, msgID uint64, size int) {
		ri, ok := reqByID[msgID]
		if !ok {
			return
		}
		delete(reqByID, msgID)
		m := serverEp.SendMessage(ri.clientVM, ri.respBytes, nil)
		respByID[m.ID] = ri
	}

	if scheme == SchemeSilo {
		if p.DynamicHoseEpochNs > 0 {
			StartDynamicCoordination(nw, depA, p.DynamicHoseEpochNs)
			if depB != nil {
				StartDynamicCoordination(nw, depB, p.DynamicHoseEpochNs)
			}
		} else {
			// Static fixed points: A's request/response load is light
			// and non-overlapping (peak); B's shuffle is backlogged
			// everywhere (fair share).
			patA := make(workload.Pattern, nA)
			for i := 1; i < nA; i++ {
				patA[i] = []int{0}
				patA[0] = append(patA[0], i)
			}
			CoordinateHose(nw, depA, patA, HosePeak)
			if depB != nil {
				CoordinateHose(nw, depB, crossServerAllToAll(nA, p.VMsPerTenantPerServer), HoseFairShare)
			}
		}
	}

	// Drive the ETC workload: aggregate load TargetABps split over
	// clients. Each request moves ≈(100+mean value) bytes. Clients are
	// closed-loop with limited concurrency, like memcached's
	// synchronous transactions (§6.1): a request past the concurrency
	// limit waits for an outstanding response.
	const clientConcurrency = 4
	etc := workload.DefaultETC()
	meanVal := etc.MeanValueBytes(stats.NewRand(99), 50000)
	perClient := p.TargetABps / float64(nA-1)
	reqRate := perClient / (100 + meanVal) // requests/sec per client
	etc.GapScale = 1 / reqRate * (1 - etc.GapShape)
	horizon := int64(p.DurationSec * 1e9)
	type clientState struct {
		outstanding int
		dueValues   []int // response sizes of due-but-unissued requests
		issue       func(valueBytes int)
	}
	clients := map[int]*clientState{} // by client VM id
	for i := 1; i < nA; i++ {
		cs := &clientState{}
		clients[depA.VMIDs[i]] = cs
		gen := workload.NewETCGenerator(etc, rng.Split(), 0)
		clientEp := depA.Endpoints[i]
		cs.issue = func(valueBytes int) {
			res.RequestsIssued++
			cs.outstanding++
			ri := &reqInfo{clientVM: clientEp.VMID, respBytes: valueBytes, issued: nw.Sim.Now()}
			m := clientEp.SendMessage(serverVM, 100, nil)
			reqByID[m.ID] = ri
		}
		var schedule func()
		schedule = func() {
			req := gen.Next()
			if req.At >= horizon {
				return
			}
			nw.Sim.At(req.At, func() {
				if cs.outstanding < clientConcurrency {
					cs.issue(req.ValueBytes)
				} else {
					cs.dueValues = append(cs.dueValues, req.ValueBytes)
				}
				schedule()
			})
		}
		schedule()
		// Response completion: record latency and release the closed
		// loop.
		clientEp.OnMessage = func(srcVM int, msgID uint64, size int) {
			ri, ok := respByID[msgID]
			if !ok {
				return
			}
			delete(respByID, msgID)
			res.RequestsCompleted++
			res.Latencies.Add(float64(nw.Sim.Now()-ri.issued) / 1e3) // µs
			cs.outstanding--
			if len(cs.dueValues) > 0 && cs.outstanding < clientConcurrency {
				v := cs.dueValues[0]
				cs.dueValues = cs.dueValues[1:]
				cs.issue(v)
			}
		}
	}

	// Tenant B: continuous bulk messages between cross-server pairs.
	if depB != nil {
		pat := crossServerAllToAll(nA, p.VMsPerTenantPerServer)
		for src, dsts := range pat {
			for _, dst := range dsts {
				srcEp := depB.Endpoints[src]
				dstVM := depB.VMIDs[dst]
				var pump func(*transport.Message)
				pump = func(*transport.Message) {
					if nw.Sim.Now() < horizon {
						srcEp.SendMessage(dstVM, p.BulkMsgBytes, pump)
					}
				}
				pump(nil)
			}
		}
	}

	nw.Sim.Run(horizon + int64(2e9)) // drain tail
	if depB != nil {
		for i, ep := range depB.Endpoints {
			for j := range depB.Endpoints {
				if i != j {
					res.BulkBytes += ep.BytesReceived(depB.VMIDs[j])
				}
			}
		}
	}
	return res, nil
}

// crossServerAllToAll builds tenant B's shuffle pattern excluding
// same-server pairs (which never cross the network).
func crossServerAllToAll(n, perServer int) workload.Pattern {
	pat := make(workload.Pattern, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && i/perServer != j/perServer {
				pat[i] = append(pat[i], j)
			}
		}
	}
	return pat
}

// Figure11Scenarios returns the five scenario lines of Figure 11
// (idle TCP, contended TCP, Silo req 1–3).
func Figure11Scenarios() []MemcachedScenario {
	scs := []MemcachedScenario{
		{Name: "TCP (idle)", WithBulk: false},
		{Name: "TCP", WithBulk: true},
	}
	for req := 1; req <= 3; req++ {
		a, b := Table2Guarantees(req)
		scs = append(scs, MemcachedScenario{
			Name:       fmt.Sprintf("Silo req%d", req),
			WithBulk:   true,
			GuaranteeA: &a,
			GuaranteeB: &b,
		})
	}
	return scs
}

// RunFigure1 runs the motivation experiment: memcached alone vs with
// competing netperf traffic, both plain TCP (Figure 1).
func RunFigure1(p MemcachedParams) ([]MemcachedResult, error) {
	var out []MemcachedResult
	for _, sc := range []MemcachedScenario{
		{Name: "Memcached alone", WithBulk: false},
		{Name: "Memcached with netperf", WithBulk: true},
	} {
		r, err := RunMemcachedScenario(p, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunFigure11 runs all five scenario lines.
func RunFigure11(p MemcachedParams) ([]MemcachedResult, error) {
	var out []MemcachedResult
	for _, sc := range Figure11Scenarios() {
		r, err := RunMemcachedScenario(p, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderMemcached formats results as the paper's Figure 11(b)/(c)
// tables.
func RenderMemcached(results []MemcachedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %12s %14s %14s\n",
		"scenario", "p50(µs)", "p99(µs)", "p99.9(µs)", "guarantee(µs)", "memcached(req/s)", "bulk(Gbps)")
	for _, r := range results {
		g := "-"
		if r.GuaranteeUs > 0 {
			g = fmt.Sprintf("%.0f", r.GuaranteeUs)
		}
		fmt.Fprintf(&b, "%-24s %10.0f %10.0f %10.0f %12s %14.0f %14.2f\n",
			r.Scenario,
			r.Latencies.Percentile(50),
			r.Latencies.Percentile(99),
			r.Latencies.Percentile(99.9),
			g,
			r.MemcachedThroughputRps(),
			r.BulkThroughputBps()*8/1e9)
	}
	return b.String()
}
