package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRunSoakShortIsClean(t *testing.T) {
	p := DefaultSoakParams()
	p.Duration = 400 * time.Millisecond
	p.Dir = t.TempDir()
	meta := &obs.RunMeta{Tool: "soak-test", Seed: int64(p.Seed)}
	res, err := RunSoak(p, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("soak violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.Crashes < 3 {
		t.Fatalf("only %d crash cycles in %v", res.Crashes, p.Duration)
	}
	if res.Mutations < uint64(res.Crashes) {
		t.Fatalf("mutations %d < crashes %d", res.Mutations, res.Crashes)
	}
	if res.Places == 0 || res.Removes == 0 {
		t.Fatalf("churn too one-sided: %+v", res)
	}
	if res.Meta == nil || res.Meta.Tool != "soak-test" {
		t.Fatal("RunMeta not stamped on the soak result")
	}
	out := res.Render()
	if !strings.Contains(out, "verdict: OK") {
		t.Fatalf("render verdict:\n%s", out)
	}

	// The report file round-trips with its provenance.
	path := filepath.Join(t.TempDir(), "soak.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"tool": "soak-test"`) {
		t.Fatalf("soak report missing RunMeta:\n%s", b)
	}
}

func TestRunSoakMaxCrashesStopsEarly(t *testing.T) {
	p := DefaultSoakParams()
	p.Duration = 30 * time.Second // the cap, not the clock, must stop it
	p.MaxCrashes = 2
	p.Dir = t.TempDir()
	start := time.Now()
	res, err := RunSoak(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", res.Crashes)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("MaxCrashes did not stop the soak")
	}
}

func TestRunWALBenchZeroAllocs(t *testing.T) {
	p := DefaultWALBenchParams()
	p.Ops = 4000
	p.Dir = t.TempDir()
	rec, err := RunWALBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Benchmark != "walub" || rec.Requests != p.Ops {
		t.Fatalf("bad record: %+v", rec)
	}
	if rec.AllocsPerOp != 0 {
		t.Fatalf("WAL append allocates %d allocs/op, want 0", rec.AllocsPerOp)
	}
	if rec.MeanNs <= 0 || rec.P99Ns < rec.P50Ns {
		t.Fatalf("degenerate latency stats: %+v", rec)
	}
}
