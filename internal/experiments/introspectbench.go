package experiments

import (
	"runtime"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs/introspect"
	"repro/internal/stats"
	"repro/internal/topology"
)

// IntrospectBenchParams configures the introspection-overhead
// microbenchmark ("introspectub"): the netsimub permutation blast run
// with the full introspection plane attached — per-queue headroom taps
// on every port and an envelope estimator fed from every host's NIC —
// so the per-packet cost and allocation count measure the taps
// themselves against the committed baseline.
type IntrospectBenchParams struct {
	// PacketsPerHost injected per host per rep.
	PacketsPerHost int
	// Reps is the sample size (one ns/packet sample per rep).
	Reps int
}

// DefaultIntrospectBenchParams mirrors DefaultNetsimBenchParams so the
// introspectub and netsimub records stay comparable head to head.
func DefaultIntrospectBenchParams() IntrospectBenchParams {
	return IntrospectBenchParams{PacketsPerHost: 1000, Reps: 25}
}

// RunIntrospectBench measures the introspection plane's hot-path
// overhead end to end. The workload is RunNetsimBench's: per-host
// generators inject a line-rate permutation through the 2-pod fabric
// and the simulator runs to drain. Every queue carries a headroom
// watch, every generated packet funds an unpaced NIC-tap envelope
// estimator (SrcVM = host), and every port has bounds installed so the
// margin arithmetic runs too. One op is one simulated packet; the
// acceptance bar is allocs_per_op == 0 — attaching the plane must not
// put allocations on the per-packet path.
func RunIntrospectBench(p IntrospectBenchParams) (BenchRecord, error) {
	if p.Reps <= 0 {
		p.Reps = DefaultIntrospectBenchParams().Reps
	}
	if p.PacketsPerHost <= 0 {
		p.PacketsPerHost = DefaultIntrospectBenchParams().PacketsPerHost
	}
	tree, err := topology.New(topology.Config{
		Pods:           2,
		RacksPerPod:    2,
		ServersPerRack: 2,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 150e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		return BenchRecord{}, err
	}
	nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
	hosts := len(nw.Hosts)
	var deliveredCount int64
	for _, h := range nw.Hosts {
		h.OnDeliver = func(*netsim.Packet, int64) { deliveredCount++ }
		h.FreeOnDeliver = true
	}

	in := introspect.Attach(nw, nil, introspect.Config{})
	for h := 0; h < hosts; h++ {
		in.TrackVM(h, h, h/4, introspect.Envelope{RateBps: 1 * gbps, BurstBytes: 30e3})
	}
	for pid := range nw.Queues {
		if nw.Queues[pid] != nil {
			in.SetPortBounds(pid, introspect.PortBounds{Tenants: 1, BacklogBytes: 300e3, BusyPeriodSec: 1e-3, CapacitySec: 1e-3})
		}
	}

	const size = 1500
	gapNs := int64(float64(size*8) / (10 * gbps * 8) * 1e9)
	gens := make([]*benchGen, hosts)
	for h := 0; h < hosts; h++ {
		gens[h] = &benchGen{host: nw.Hosts[h], dst: (h + 3) % hosts, size: size, gapNs: gapNs, srcVM: h}
		gens[h].fn = gens[h].send
	}
	perPacket := stats.NewSample(p.Reps)
	rec := BenchRecord{Benchmark: "introspectub", Hosts: hosts}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for rep := 0; rep < p.Reps; rep++ {
		repStart := time.Now()
		base := nw.Sim.Now()
		for h := 0; h < hosts; h++ {
			gens[h].remaining = p.PacketsPerHost
			nw.Sim.At(base, gens[h].fn)
		}
		nw.Sim.Run(base + int64(p.PacketsPerHost)*gapNs + int64(1e6))
		perPacket.Add(float64(time.Since(repStart).Nanoseconds()) / float64(p.PacketsPerHost*hosts))
	}
	rec.TotalNs = time.Since(start).Nanoseconds()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	rec.Requests = p.Reps * p.PacketsPerHost * hosts
	rec.Accepted = int(deliveredCount)
	if rec.Requests > 0 {
		rec.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(rec.Requests)
	}
	rec.MeanNs = int64(perPacket.Mean())
	rec.P50Ns = int64(perPacket.Percentile(50))
	rec.P99Ns = int64(perPacket.Percentile(99))
	rec.MaxNs = int64(perPacket.Max())
	// The snapshot must reflect the run (taps actually fired), or the
	// benchmark silently measured nothing.
	if s := in.Snapshot(); len(s.Envelopes) != hosts || s.Envelopes[0].Emissions == 0 {
		rec.Accepted = 0
	}
	return rec, nil
}
