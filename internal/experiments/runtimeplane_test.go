package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHotPodStragglerAnalysis is the runtime-plane e2e on an
// intentionally imbalanced fabric: every host in the hot pod injects 8×
// the uniform quota, so that pod's island dominates busy time and the
// analyzer must name it as the straggler. Only structural facts are
// asserted — which island, and that the recommendation stays in range —
// never wall-clock magnitudes.
func TestHotPodStragglerAnalysis(t *testing.T) {
	params := ParallelScaleParams{
		Pods:           4,
		PacketsPerHost: 150,
		WindowNs:       100_000,
		HotPod:         1,
		HotFactor:      8,
		Workers:        2,
	}
	res, err := RunParallelScale(params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Packets {
		t.Fatalf("delivered %d of %d packets", res.Delivered, res.Packets)
	}
	// 3 uniform pods at 150 pkts × 4 hosts, the hot pod at 1200 × 4.
	if want := int64(3*4*150 + 4*8*150); res.Packets != want {
		t.Fatalf("injected %d packets, want %d", res.Packets, want)
	}
	if !strings.Contains(res.Summary, "hotPod=1 hotFactor=8") {
		t.Error("summary header does not record the hot-pod skew")
	}

	st := res.Runtime
	if !st.Parallel || st.Coord == nil {
		t.Fatalf("runtime plane missing from parallel run: %+v", st)
	}
	if st.Coord.Epochs != res.Epochs {
		t.Errorf("probe epochs %d != engine epochs %d", st.Coord.Epochs, res.Epochs)
	}
	// The hot pod's island executes ~8× the events of any uniform pod's.
	hotEvents, maxOther := int64(0), int64(0)
	for _, is := range st.Islands {
		if is.Island == params.HotPod {
			hotEvents = is.Events
		} else if is.Events > maxOther {
			maxOther = is.Events
		}
	}
	if hotEvents <= maxOther {
		t.Errorf("hot island executed %d events, another island %d — skew did not land",
			hotEvents, maxOther)
	}

	a := res.Analysis
	if !a.Parallel {
		t.Fatal("analysis missing")
	}
	if a.Straggler != params.HotPod {
		t.Errorf("straggler = island %d, want the hot pod's island %d\n%s",
			a.Straggler, params.HotPod, st.Render())
	}
	if even := 1.0 / float64(len(st.Islands)); a.StragglerShare <= even {
		t.Errorf("straggler share %.2f not above even share %.2f", a.StragglerShare, even)
	}
	if a.StallFraction < 0 || a.StallFraction > 1 {
		t.Errorf("stall fraction %.2f out of [0,1]", a.StallFraction)
	}
	if a.RecommendedWorkers < 1 || a.RecommendedWorkers > len(st.Islands) {
		t.Errorf("recommended workers %d out of [1,%d]", a.RecommendedWorkers, len(st.Islands))
	}
	if a.Hint == "" {
		t.Error("empty hint")
	}
}

// TestHotPodEquivalence: the hot-pod skew only lengthens generator
// runs, so the determinism surface must stay byte-identical between the
// sequential and parallel engines even under imbalance.
func TestHotPodEquivalence(t *testing.T) {
	params := ParallelScaleParams{
		Pods:           4,
		PacketsPerHost: 100,
		WindowNs:       100_000,
		HotPod:         2,
		HotFactor:      4,
	}
	params.Workers = 0
	ref, err := RunParallelScale(params)
	if err != nil {
		t.Fatal(err)
	}
	params.Workers = 3
	got, err := RunParallelScale(params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != ref.Summary {
		d := firstDiff(ref.Summary, got.Summary)
		t.Errorf("hot-pod summary diverges at byte %d:\n seq: %.120q\n par: %.120q",
			d, tail(ref.Summary, d), tail(got.Summary, d))
	}
}

func TestBenchHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")

	// Missing file reads as an empty history.
	if recs, err := ReadBenchHistory(path); err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}

	meta := &obs.RunMeta{Tool: "silo-bench"}
	now := time.Unix(1754000000, 0)
	batch1 := []BenchRecord{
		{Benchmark: "netsimub", MeanNs: 100},
		{Benchmark: "netsimpar", MeanNs: 50, Meta: &obs.RunMeta{Tool: "custom"}},
	}
	if err := AppendBenchHistory(path, batch1, meta, now); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchHistory(path, []BenchRecord{{Benchmark: "runtimeub", MeanNs: 7}}, meta, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("history has %d records, want 3", len(recs))
	}
	if recs[0].Benchmark != "netsimub" || recs[0].RecordedUnix != now.Unix() {
		t.Errorf("record 0: %+v", recs[0])
	}
	if recs[0].Meta == nil || recs[0].Meta.Tool != "silo-bench" {
		t.Errorf("record 0 not stamped with the batch meta: %+v", recs[0].Meta)
	}
	// A record carrying its own meta keeps it.
	if recs[1].Meta == nil || recs[1].Meta.Tool != "custom" {
		t.Errorf("record 1 lost its own meta: %+v", recs[1].Meta)
	}
	if recs[2].Benchmark != "runtimeub" || recs[2].RecordedUnix != now.Add(time.Hour).Unix() {
		t.Errorf("record 2: %+v", recs[2])
	}

	// Appending nothing is a no-op that must not create or touch files.
	if err := AppendBenchHistory(filepath.Join(t.TempDir(), "missing", "x.jsonl"), nil, nil, time.Time{}); err != nil {
		t.Fatalf("empty append: %v", err)
	}
}

func TestBenchHistoryMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := AppendBenchHistory(path, []BenchRecord{{Benchmark: "a"}}, nil, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := appendRaw(path, "{not json\n"); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBenchHistory(path)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("malformed line not reported with its number: %v", err)
	}
}

func appendRaw(path, line string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(line)
	return err
}
