package experiments

import (
	"runtime"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	obsruntime "repro/internal/obs/runtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RunRuntimeBench is the runtime-plane overhead benchmark
// ("runtimeub"): the exact netsimpar workload with the full runtime
// plane on — probe attached, silo_runtime_* families registered — so
// its committed baseline gates the cost of engine self-observation
// against the bare parallel engine. The per-op comparison to
// BENCH_netsim_parallel.json is the plane's marginal cost; the
// regression gate requires allocs/op to stay 0 (the probe may cost a
// few wall-clock ns per event, never an allocation).
func RunRuntimeBench(p NetsimParallelBenchParams) (BenchRecord, error) {
	d := DefaultNetsimParallelBenchParams()
	if p.Pods <= 0 {
		p.Pods = d.Pods
	}
	if p.PacketsPerHost <= 0 {
		p.PacketsPerHost = d.PacketsPerHost
	}
	if p.Reps <= 0 {
		p.Reps = d.Reps
	}
	if p.Workers <= 0 {
		p.Workers = d.Workers
	}
	tree, err := topology.New(topology.Config{
		Pods:           p.Pods,
		RacksPerPod:    2,
		ServersPerRack: 2,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 150e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		return BenchRecord{}, err
	}
	nw := netsim.BuildParallel(tree, netsim.Options{PropNs: 200}, netsim.ParallelOptions{
		Workers:     p.Workers,
		CrossPropNs: 2000,
	})
	// The full plane: probe plus pull-time metric families. Registration
	// happens before the measured region, as in a real run.
	reg := obs.NewRegistry()
	obsruntime.Register(reg, nw)

	hosts := len(nw.Hosts)
	hostsPerPod := 4
	const size = 1500
	const gapNs = 1400
	gens := make([]*scaleGen, hosts)
	for h := 0; h < hosts; h++ {
		pod := h / hostsPerPod
		base := pod * hostsPerPod
		g := &scaleGen{
			host:     nw.Hosts[h],
			localDst: base + (h-base+1)%hostsPerPod,
			crossDst: (h + hostsPerPod) % hosts,
			crossMod: 4,
			size:     size,
			gapNs:    gapNs,
		}
		g.fn = g.send
		gens[h] = g
		host := nw.Hosts[h]
		g2 := g
		host.OnDeliver = func(*netsim.Packet, int64) { g2.delivered++ }
		host.FreeOnDeliver = true
	}

	perPacket := stats.NewSample(p.Reps)
	rec := BenchRecord{Benchmark: "runtimeub", Hosts: hosts}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for rep := 0; rep < p.Reps; rep++ {
		repStart := time.Now()
		base := nw.Sim.Now()
		for h, g := range gens {
			g.remaining = p.PacketsPerHost
			nw.Sim.At(base+int64(14*h+1), g.fn)
		}
		nw.Run(base + int64(p.PacketsPerHost)*gapNs + int64(1e6))
		perPacket.Add(float64(time.Since(repStart).Nanoseconds()) / float64(p.PacketsPerHost*hosts))
	}
	rec.TotalNs = time.Since(start).Nanoseconds()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	var delivered int64
	for _, g := range gens {
		delivered += g.delivered
	}
	rec.Requests = p.Reps * p.PacketsPerHost * hosts
	rec.Accepted = int(delivered)
	if rec.Requests > 0 {
		rec.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(rec.Requests)
	}
	rec.MeanNs = int64(perPacket.Mean())
	rec.P50Ns = int64(perPacket.Percentile(50))
	rec.P99Ns = int64(perPacket.Percentile(99))
	rec.MaxNs = int64(perPacket.Max())
	// Exporting after the measured region keeps the gauge functions
	// honest (they must be callable) without timing the exporter.
	_ = reg.Snapshot()
	return rec, nil
}
