package experiments

import (
	"fmt"
	"strings"

	"repro/internal/netcal"
	"repro/internal/placement"
	"repro/internal/tenant"
	"repro/internal/topology"
)

// Figure5Result reproduces the paper's placement example (Figure 5):
// nine VMs, each guaranteed 1 Gbps with a 100 KB burst allowance and
// 1 ms delay, on three servers under one 10 Gbps switch.
// Bandwidth-aware placement packs 4/4/1 — a layout whose simultaneous
// worst-case bursts overflow the port buffer — while Silo spreads
// 3/3/3, which the buffer absorbs.
type Figure5Result struct {
	// SiloLayout and OktoLayout are VMs per server.
	SiloLayout, OktoLayout []int
	// WorstCaseQueueBytes is the network-calculus backlog bound at the
	// destination server's down-port under each layout.
	SiloWorstBytes, OktoWorstBytes float64
	// BufferBytes is the available port buffer.
	BufferBytes float64
	// OktoOverflows reports whether the bandwidth-aware layout can
	// overflow (the paper's point).
	OktoOverflows bool
}

// RunFigure5 builds the example cluster, places the tenant with both
// algorithms and evaluates the worst-case queues.
//
// Note on constants: the paper illustrates with 300 KB buffers and
// reports 400 KB worst case for 4/4/1 vs 300 KB for 3/3/3, ignoring
// the token-bucket refill during the burst drain. The rigorous
// network-calculus bound adds B·(drain time) plus NIC bunching, so we
// provision 375 KB buffers (and a 50 µs paced-NIC queue capacity) to
// admit the 3/3/3 layout; 4/4/1 overflows either way. See
// EXPERIMENTS.md.
func RunFigure5() (Figure5Result, error) {
	tree, err := topology.New(topology.Config{
		Pods:           1,
		RacksPerPod:    1,
		ServersPerRack: 3,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    375e3,
		NICBufferBytes: 50e-6 * 10 * gbps,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		return Figure5Result{}, err
	}
	spec := tenant.Spec{
		ID:   1,
		Name: "fig5",
		VMs:  9,
		Guarantee: tenant.Guarantee{
			BandwidthBps: 1 * gbps,
			BurstBytes:   100e3,
			DelayBound:   1e-3,
			BurstRateBps: 10 * gbps,
		},
	}
	res := Figure5Result{BufferBytes: tree.Config().BufferBytes}

	silo := placement.NewManager(tree, placement.Options{})
	plS, err := silo.Place(spec)
	if err != nil {
		return res, fmt.Errorf("silo rejected the Figure-5 tenant: %w", err)
	}
	okto := placement.NewOktopus(tree)
	plO, err := okto.Place(spec)
	if err != nil {
		return res, fmt.Errorf("oktopus rejected the Figure-5 tenant: %w", err)
	}
	for s := 0; s < 3; s++ {
		res.SiloLayout = append(res.SiloLayout, plS.VMsOnServer(s))
		res.OktoLayout = append(res.OktoLayout, plO.VMsOnServer(s))
	}
	res.SiloWorstBytes = fig5WorstQueue(tree, spec, res.SiloLayout)
	res.OktoWorstBytes = fig5WorstQueue(tree, spec, res.OktoLayout)
	res.OktoOverflows = res.OktoWorstBytes > res.BufferBytes
	return res, nil
}

// fig5WorstQueue returns the worst-case backlog (bytes) at any
// server's ToR down-port when the other servers' VMs burst
// simultaneously toward it.
func fig5WorstQueue(tree *topology.Tree, spec tenant.Spec, layout []int) float64 {
	g := spec.Guarantee
	n := spec.VMs
	link := tree.Config().LinkBps
	worst := 0.0
	for dst, kDst := range layout {
		if kDst == 0 {
			continue
		}
		m := n - kDst // remote senders
		if m == 0 {
			continue
		}
		// Remote senders spread over the other servers with VMs.
		otherServers := 0
		for s, k := range layout {
			if s != dst && k > 0 {
				otherServers++
			}
		}
		rate := float64(minInt(m, kDst)) * g.BandwidthBps
		burst := float64(m) * g.BurstBytes
		// NIC bunching inflation.
		burst += rate * tree.ServerUpPort(0).QueueCapacity()
		peak := float64(otherServers) * link
		arr := netcal.NewRateCapped(rate, burst, peak, 1500)
		srv := netcal.NewRateLatency(link, 0)
		if b := netcal.Backlog(arr, srv); b > worst {
			worst = b
		}
	}
	return worst
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render formats the Figure-5 comparison.
func (r Figure5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "port buffer: %.0f KB\n", r.BufferBytes/1e3)
	fmt.Fprintf(&b, "%-22s layout=%v  worst-case queue=%.0f KB  overflow=%v\n",
		"bandwidth-aware (Okto)", r.OktoLayout, r.OktoWorstBytes/1e3, r.OktoOverflows)
	fmt.Fprintf(&b, "%-22s layout=%v  worst-case queue=%.0f KB  overflow=%v\n",
		"Silo", r.SiloLayout, r.SiloWorstBytes/1e3, r.SiloWorstBytes > r.BufferBytes)
	return b.String()
}
