package experiments

import "testing"

// BenchmarkNetsimParallel runs the netsimpar microbenchmark workload
// once per iteration (64 hosts × 1000 packets on the 16-pod fabric);
// ns/op ÷ 64000 is the per-packet cost silo-bench reports.
func BenchmarkNetsimParallel(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "w1", 8: "w8"}[workers], func(b *testing.B) {
			p := DefaultNetsimParallelBenchParams()
			p.Workers = workers
			p.Reps = b.N
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := RunNetsimParallelBench(p); err != nil {
				b.Fatal(err)
			}
		})
	}
}
