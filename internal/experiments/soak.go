package experiments

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/placement/durable"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/topology"
)

// SoakParams configures the chaos soak: randomized control-plane churn
// against a durable placement manager, interrupted by simulated
// crash-kills that clip the WAL at a random byte offset — including
// mid-record, the torn-write case — and recover from what survived.
type SoakParams struct {
	// Duration is the wall-clock soak length.
	Duration time.Duration
	// Seed drives the churn and the crash offsets.
	Seed uint64
	// OpsPerCycle is the churn length between crash-kills.
	OpsPerCycle int
	// SyncEvery batches WAL fsyncs (records past the last fsync are
	// exactly what a crash may clip).
	SyncEvery int
	// SnapshotEvery sets the snapshot cadence, exercising rotation and
	// segment GC under crashes.
	SnapshotEvery int
	// MaxCrashes stops the soak early after this many crash/recovery
	// cycles (0 = duration only).
	MaxCrashes int
	// Dir is the scratch root for store directories ("" = a fresh temp
	// dir, removed afterwards).
	Dir string
}

// DefaultSoakParams is sized for a quick local run; CI passes
// -duration 30 for the long soak.
func DefaultSoakParams() SoakParams {
	return SoakParams{
		Duration:      2 * time.Second,
		Seed:          42,
		OpsPerCycle:   40,
		SyncEvery:     4,
		SnapshotEvery: 64,
	}
}

// SoakResult is the soak verdict. The hard assertions — zero invariant
// violations, zero overbooked ports, zero unexplained safe-mode
// entries — surface as the Violations list; a healthy soak has none.
type SoakResult struct {
	DurationSec   float64 `json:"duration_sec"`
	Seed          uint64  `json:"seed"`
	OpsPerCycle   int     `json:"ops_per_cycle"`
	SyncEvery     int     `json:"sync_every"`
	SnapshotEvery int     `json:"snapshot_every"`

	// Crashes counts crash/recovery cycles completed.
	Crashes int `json:"crashes"`
	// Mutations is the highest WAL sequence number reached.
	Mutations uint64 `json:"mutations"`
	// Churn op outcomes across the whole soak.
	Places   int `json:"places"`
	Rejects  int `json:"rejects"`
	Removes  int `json:"removes"`
	Recovers int `json:"recovers"`
	// TornTails counts recoveries that found (and clipped) a torn
	// record; TruncatedBytes is the total clipped.
	TornTails      int   `json:"torn_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	// ReplayedRecords totals WAL records re-applied across recoveries.
	ReplayedRecords  int   `json:"replayed_records"`
	MaxReplayRecords int   `json:"max_replay_records"`
	MaxReplayNs      int64 `json:"max_replay_ns"`
	MeanReplayNs     int64 `json:"mean_replay_ns"`
	// Snapshots counts recoveries that started from a snapshot.
	SnapshotRestores int `json:"snapshot_restores"`
	// Violations lists every broken promise the soak observed:
	// invariant failures (overbooked ports included), corrupt tails
	// from clean truncation, unexplained safe-mode entries, divergence
	// between the recovered sequence and the surviving log bytes.
	Violations []string `json:"violations,omitempty"`

	ElapsedNs int64        `json:"elapsed_ns"`
	Meta      *obs.RunMeta `json:"meta,omitempty"`
}

// Render formats the soak verdict.
func (r *SoakResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %.1fs, seed %d, %d ops/cycle, sync every %d, snapshot every %d\n",
		r.DurationSec, r.Seed, r.OpsPerCycle, r.SyncEvery, r.SnapshotEvery)
	fmt.Fprintf(&b, "crashes: %d cycles, %d mutations logged (%d placed, %d rejected, %d removed, %d recover calls)\n",
		r.Crashes, r.Mutations, r.Places, r.Rejects, r.Removes, r.Recovers)
	fmt.Fprintf(&b, "recovery: %d records replayed (max %d/cycle), torn tails clipped %d (%d B), %d snapshot restores\n",
		r.ReplayedRecords, r.MaxReplayRecords, r.TornTails, r.TruncatedBytes, r.SnapshotRestores)
	fmt.Fprintf(&b, "replay time: max %.3f ms, mean %.3f ms\n",
		float64(r.MaxReplayNs)/1e6, float64(r.MeanReplayNs)/1e6)
	if len(r.Violations) == 0 {
		b.WriteString("verdict: OK — zero invariant violations, zero overbooked ports, zero unexplained safe-mode entries\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAILED — %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// WriteFile persists the RunMeta-stamped soak report as JSON.
func (r *SoakResult) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// soakTree is the soak fabric (mirrors the placement churn tests).
func soakTree() (*topology.Tree, error) {
	return topology.New(topology.Config{
		Pods:           2,
		RacksPerPod:    2,
		ServersPerRack: 4,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    2,
		PodOversub:     2,
	})
}

// soakSpec derives one churn tenant spec from the RNG stream.
func soakSpec(rng *stats.Rand, id int) tenant.Spec {
	vms := 1 + rng.Intn(6)
	fd := 1 + rng.Intn(2)
	if fd > vms {
		fd = vms
	}
	return tenant.Spec{
		ID:   id,
		Name: fmt.Sprintf("soak-%d", id),
		VMs:  vms,
		Guarantee: tenant.Guarantee{
			BandwidthBps: float64(1+rng.Intn(10)) * 100 * mbps,
			BurstBytes:   float64(1+rng.Intn(10)) * 3e3,
			DelayBound:   float64(rng.Intn(3)) * 1e-3,
			BurstRateBps: 10 * gbps,
		},
		FaultDomains: fd,
	}
}

// crashCopy simulates a kill -9 plus torn write: it copies the store
// dir and clips the live WAL segment's copy at cut bytes.
func crashCopy(src, dst, liveSeg string, cut int64) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	return filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if d.Name() == liveSeg && int64(len(b)) > cut {
			b = b[:cut]
		}
		return os.WriteFile(filepath.Join(dst, d.Name()), b, 0o644)
	})
}

// RunSoak drives the chaos soak: churn the durable manager, crash-kill
// it at a random WAL offset, recover from the surviving bytes, verify
// every invariant, repeat until the clock (or MaxCrashes) says stop.
func RunSoak(p SoakParams, meta *obs.RunMeta) (*SoakResult, error) {
	def := DefaultSoakParams()
	if p.Duration <= 0 {
		p.Duration = def.Duration
	}
	if p.OpsPerCycle <= 0 {
		p.OpsPerCycle = def.OpsPerCycle
	}
	if p.SyncEvery <= 0 {
		p.SyncEvery = def.SyncEvery
	}
	if p.SnapshotEvery == 0 {
		p.SnapshotEvery = def.SnapshotEvery
	}
	root := p.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "silo-soak")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	tree, err := soakTree()
	if err != nil {
		return nil, err
	}

	res := &SoakResult{
		DurationSec:   p.Duration.Seconds(),
		Seed:          p.Seed,
		OpsPerCycle:   p.OpsPerCycle,
		SyncEvery:     p.SyncEvery,
		SnapshotEvery: p.SnapshotEvery,
		Meta:          meta,
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	rng := stats.NewRand(p.Seed)
	opts := durable.Options{SyncEvery: p.SyncEvery, SnapshotEvery: p.SnapshotEvery, Meta: meta}
	liveDir := filepath.Join(root, "store-000000")
	m, _, err := durable.Open(liveDir, tree, opts)
	if err != nil {
		return nil, err
	}
	nextID := 1
	replayNsTotal := int64(0)
	start := time.Now()
	deadline := start.Add(p.Duration)

	for time.Now().Before(deadline) && len(res.Violations) == 0 {
		if p.MaxCrashes > 0 && res.Crashes >= p.MaxCrashes {
			break
		}
		// Churn phase.
		for i := 0; i < p.OpsPerCycle; i++ {
			switch r := rng.Float64(); {
			case r < 0.55:
				if _, err := m.Place(soakSpec(rng, nextID)); err != nil {
					res.Rejects++
				} else {
					res.Places++
				}
				nextID++
			case r < 0.80:
				if ids := m.AdmittedIDs(); len(ids) > 0 {
					m.Remove(ids[rng.Intn(len(ids))])
					res.Removes++
				}
			case r < 0.93:
				s := rng.Intn(tree.Servers())
				if !m.ServerFailed(s) {
					rep := m.Recover([]int{s}, nil, placement.RecoverOptions{})
					if rep.LogErr != nil {
						violate("cycle %d: recover log error: %v", res.Crashes, rep.LogErr)
					}
					res.Recovers++
				}
			default:
				if failed := m.FailedServerIDs(); len(failed) > 0 {
					m.RestoreServers(failed...)
				}
			}
		}
		if m.Seq() > res.Mutations {
			res.Mutations = m.Seq()
		}

		// Crash phase: clip the live segment at a random offset within
		// the last 64 bytes — usually mid-record, the torn-write case.
		seqBefore := m.Seq()
		segName := filepath.Base(m.WALPath())
		size := m.WALSize()
		lo := size - 64
		if lo < 0 {
			lo = 0
		}
		cut := lo + int64(rng.Intn(int(size-lo)+1))
		nextDir := filepath.Join(root, fmt.Sprintf("store-%06d", res.Crashes+1))
		if err := crashCopy(liveDir, nextDir, segName, cut); err != nil {
			return nil, err
		}
		m.Close() // release the abandoned store's fd; the copy is the crash image
		os.RemoveAll(liveDir)

		// The surviving log bytes predict the recovered sequence.
		clipped, rerr := os.ReadFile(filepath.Join(nextDir, segName))
		if rerr != nil {
			return nil, rerr
		}
		recs, _, _ := durable.DecodeRecords(clipped)

		r, info, err := durable.Open(nextDir, tree, opts)
		if err != nil {
			violate("cycle %d: recovery failed: %v", res.Crashes, err)
			break
		}
		res.Crashes++
		res.ReplayedRecords += info.ReplayedRecords
		if info.ReplayedRecords > res.MaxReplayRecords {
			res.MaxReplayRecords = info.ReplayedRecords
		}
		if info.ReplayNs > res.MaxReplayNs {
			res.MaxReplayNs = info.ReplayNs
		}
		replayNsTotal += info.ReplayNs
		if info.TornTail {
			res.TornTails++
		}
		res.TruncatedBytes += info.TruncatedBytes
		if info.SnapshotSeq > 0 {
			res.SnapshotRestores++
		}

		// Hard assertions. VerifyInvariants recomputes every port's
		// admitted load against its capacity bound, so a pass means no
		// port is overbooked.
		if err := r.VerifyInvariants(); err != nil {
			violate("cycle %d: invariants after recovery: %v", res.Crashes, err)
		}
		if info.CorruptTail {
			violate("cycle %d: clean truncation reported a corrupt tail: %+v", res.Crashes, info)
		}
		if info.SafeMode || r.SafeMode() {
			violate("cycle %d: unexplained safe-mode entry: %+v", res.Crashes, info)
		}
		if r.Seq() > seqBefore {
			violate("cycle %d: recovered seq %d exceeds pre-crash seq %d", res.Crashes, r.Seq(), seqBefore)
		}
		if len(recs) > 0 && r.Seq() != recs[len(recs)-1].Seq {
			violate("cycle %d: recovered seq %d, surviving log ends at %d",
				res.Crashes, r.Seq(), recs[len(recs)-1].Seq)
		}
		if r.Seq() < info.SnapshotSeq {
			violate("cycle %d: recovered seq %d below snapshot seq %d", res.Crashes, r.Seq(), info.SnapshotSeq)
		}
		m, liveDir = r, nextDir
	}
	m.Close()
	res.ElapsedNs = time.Since(start).Nanoseconds()
	if res.Crashes > 0 {
		res.MeanReplayNs = replayNsTotal / int64(res.Crashes)
	}
	return res, nil
}
