package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// BestEffortParams configures the §4.4 experiment: a guaranteed
// (class-A) tenant shares the cluster with a best-effort tenant that
// holds no guarantees and rides the low 802.1q priority. Silo's claim:
// the best-effort tenant soaks up residual capacity without disturbing
// the guaranteed tenant's latency.
type BestEffortParams struct {
	Racks, ServersPerRack int
	DurationSec           float64
	GuaranteedVMs         int
	BestEffortVMs         int
	Seed                  uint64
}

// DefaultBestEffortParams returns a rack-scale configuration.
func DefaultBestEffortParams() BestEffortParams {
	return BestEffortParams{
		Racks:          2,
		ServersPerRack: 5,
		DurationSec:    0.05,
		GuaranteedVMs:  9,
		BestEffortVMs:  9,
		Seed:           13,
	}
}

// BestEffortResult reports both tenants' outcomes with and without the
// best-effort tenant present.
type BestEffortResult struct {
	// GuaranteedP99AloneUs / WithBEUs: the guaranteed tenant's p99
	// message latency without and with best-effort load.
	GuaranteedP99AloneUs  float64
	GuaranteedP99WithBEUs float64
	// GuaranteeUs is the tenant's message-latency guarantee.
	GuaranteeUs float64
	// BestEffortGbps is the best-effort tenant's achieved throughput.
	BestEffortGbps float64
	// Drops across switch ports (compliant traffic must see zero drops
	// at high priority; best-effort may lose packets).
	HighPrioDrops int64
}

// RunBestEffort runs the coexistence experiment twice (guaranteed
// tenant alone, then with best-effort background) and compares.
func RunBestEffort(p BestEffortParams) (BestEffortResult, error) {
	alone, _, _, err := bestEffortRun(p, false)
	if err != nil {
		return BestEffortResult{}, err
	}
	withBE, beBytes, simSec, err := bestEffortRun(p, true)
	if err != nil {
		return BestEffortResult{}, err
	}
	g := bestEffortGuarantee()
	res := BestEffortResult{
		GuaranteedP99AloneUs:  alone.Percentile(99),
		GuaranteedP99WithBEUs: withBE.Percentile(99),
		GuaranteeUs:           g.MessageLatencyBound(5000) * 1e6,
		BestEffortGbps:        float64(beBytes) * 8 / simSec / 1e9,
	}
	return res, nil
}

func bestEffortGuarantee() tenant.Guarantee {
	return tenant.Guarantee{
		BandwidthBps: 0.25 * gbps,
		BurstBytes:   15e3,
		DelayBound:   1e-3,
		BurstRateBps: 1 * gbps,
	}
}

func bestEffortRun(p BestEffortParams, withBE bool) (*stats.Sample, int64, float64, error) {
	tree, err := topology.New(topology.Config{
		Pods:           1,
		RacksPerPod:    p.Racks,
		ServersPerRack: p.ServersPerRack,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    5,
		PodOversub:     1,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
	f := transport.NewFabric(nw)
	rng := stats.NewRand(p.Seed)

	placer := SchemeSilo.placer(tree)
	specG := tenant.Spec{ID: 1, Name: "guaranteed", VMs: p.GuaranteedVMs,
		Guarantee: bestEffortGuarantee(), FaultDomains: 2}
	plG, err := placer.Place(specG)
	if err != nil {
		return nil, 0, 0, err
	}
	depG := DeployTenant(nw, f, SchemeSilo, specG, plG, 1000)
	CoordinateHose(nw, depG, workload.AllToOne(p.GuaranteedVMs), HoseFairShare)

	var depBE *Deployment
	if withBE {
		specBE := tenant.Spec{ID: 2, Name: "best-effort", VMs: p.BestEffortVMs,
			Class: tenant.ClassBestEffort, FaultDomains: 2}
		plBE, err := placer.Place(specBE)
		if err != nil {
			return nil, 0, 0, err
		}
		// Best-effort endpoints: unpaced, low priority, plain TCP.
		topt := transport.Options{Variant: transport.Reno, MinRTONs: 10_000_000,
			Prio: netsim.PrioBestEffort, MaxCwndBytes: 256 << 10}
		depBE = &Deployment{Spec: specBE, Placement: plBE,
			VMIDs: make([]int, specBE.VMs), Endpoints: make([]*transport.Endpoint, specBE.VMs)}
		for i := 0; i < specBE.VMs; i++ {
			depBE.VMIDs[i] = 2000 + i
			depBE.Endpoints[i] = f.AddEndpoint(2000+i, plBE.Servers[i], topt)
		}
	}

	horizon := int64(p.DurationSec * 1e9)
	lat := stats.NewSample(1 << 12)
	// Guaranteed tenant: sparse all-to-one bursts (the class-A
	// pattern).
	msg := 5000
	g := bestEffortGuarantee()
	meanPeriod := 4 * float64(p.GuaranteedVMs-1) * float64(msg) / g.BandwidthBps * 1e9
	var round func()
	next := int64(rng.Exp(meanPeriod))
	round = func() {
		for i := 1; i < p.GuaranteedVMs; i++ {
			depG.Endpoints[i].SendMessage(depG.VMIDs[0], msg, func(m *transport.Message) {
				lat.Add(float64(m.Latency()) / 1e3)
			})
		}
		next += int64(rng.Exp(meanPeriod))
		if next < horizon {
			nw.Sim.At(next, round)
		}
	}
	nw.Sim.At(next, round)

	// Best-effort tenant: all-out shuffle, as greedy as TCP allows.
	if depBE != nil {
		for i := 0; i < depBE.Spec.VMs; i++ {
			for j := 0; j < depBE.Spec.VMs; j++ {
				if i == j || depBE.Placement.Servers[i] == depBE.Placement.Servers[j] {
					continue
				}
				ep := depBE.Endpoints[i]
				dst := depBE.VMIDs[j]
				var pump func(*transport.Message)
				pump = func(*transport.Message) {
					if nw.Sim.Now() < horizon {
						ep.SendMessage(dst, 1<<20, pump)
					}
				}
				pump(nil)
			}
		}
	}

	nw.Sim.Run(horizon + int64(3e9))
	var beBytes int64
	if depBE != nil {
		for i, ep := range depBE.Endpoints {
			for j := range depBE.Endpoints {
				if i != j {
					beBytes += ep.BytesReceived(depBE.VMIDs[j])
				}
			}
		}
	}
	return lat, beBytes, p.DurationSec, nil
}

// Render formats the coexistence result.
func (r BestEffortResult) Render() string {
	return fmt.Sprintf(
		"guaranteed tenant p99: alone=%.0fµs  with best-effort=%.0fµs  (guarantee %.0fµs)\n"+
			"best-effort throughput on residual capacity: %.2f Gbps\n",
		r.GuaranteedP99AloneUs, r.GuaranteedP99WithBEUs, r.GuaranteeUs, r.BestEffortGbps)
}
