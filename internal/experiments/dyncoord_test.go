package experiments

import (
	"testing"
)

// TestDynamicCoordinationMeetsGuarantee validates the EyeQ-style
// dynamic hose loop end to end: even at req1 (guarantee == average
// demand, the paper's hardest configuration), the p99 request latency
// stays within the message-latency guarantee.
func TestDynamicCoordinationMeetsGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level simulation")
	}
	p := DefaultMemcachedParams()
	p.DurationSec = 0.1
	a, b := Table2Guarantees(1)
	r, err := RunMemcachedScenario(p, MemcachedScenario{
		Name: "Silo req1 dynamic", WithBulk: true, GuaranteeA: &a, GuaranteeB: &b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.RequestsCompleted == 0 {
		t.Fatal("no requests completed")
	}
	if got := r.Latencies.Percentile(99); got > r.GuaranteeUs {
		t.Errorf("dynamic req1 p99 = %.0f µs exceeds guarantee %.0f µs", got, r.GuaranteeUs)
	}
	if r.BulkThroughputBps()*8/1e9 < 20 {
		t.Errorf("bulk throughput %.1f Gbps too low", r.BulkThroughputBps()*8/1e9)
	}
}
