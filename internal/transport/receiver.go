package transport

import (
	"sort"

	"repro/internal/netsim"
)

// onData processes an arriving data segment at the receiver: update
// the reassembly state and return a cumulative ack. DCTCP's exact echo
// reflects this packet's CE mark in the ack's ECE bit.
func (e *Endpoint) onData(p *netsim.Packet, seg *segment) {
	rs := e.rcv[seg.peerVM]
	if rs == nil {
		rs = &rcvState{ooo: make(map[int64]int64), pending: make(map[uint64]pendingMsg)}
		e.rcv[seg.peerVM] = rs
	}
	// Register the segment's message frame (idempotent).
	if seg.msgEnd > rs.rcvNxt {
		if _, ok := rs.pending[seg.msgID]; !ok {
			rs.pending[seg.msgID] = pendingMsg{end: seg.msgEnd, size: seg.msgSize}
		}
	}
	end := seg.seq + int64(seg.length)
	switch {
	case end <= rs.rcvNxt:
		// Stale duplicate; re-ack.
	case seg.seq <= rs.rcvNxt:
		// In-order (possibly overlapping) data.
		advanceFrom := rs.rcvNxt
		rs.rcvNxt = end
		rs.bytesIn += end - advanceFrom
		// Drain any now-contiguous buffered segments.
		for {
			oend, ok := rs.ooo[rs.rcvNxt]
			if !ok {
				// The buffer keys on segment start; scan for any range
				// covering rcvNxt (overlaps are possible after
				// go-back-N retransmission).
				found := false
				for s, e2 := range rs.ooo {
					if s <= rs.rcvNxt && e2 > rs.rcvNxt {
						oend, found = e2, true
						delete(rs.ooo, s)
						break
					}
					if e2 <= rs.rcvNxt {
						delete(rs.ooo, s) // fully stale
					}
				}
				if !found {
					break
				}
				rs.bytesIn += oend - rs.rcvNxt
				rs.rcvNxt = oend
				continue
			}
			delete(rs.ooo, rs.rcvNxt)
			rs.bytesIn += oend - rs.rcvNxt
			rs.rcvNxt = oend
		}
		// Deliver messages whose final byte has now arrived, in message
		// ID order: map iteration order is random, and a single drain can
		// complete several messages at once, so sorting keeps callback
		// order (and anything the application emits from it) deterministic.
		if len(rs.pending) > 0 {
			done := rs.doneScratch[:0]
			for id, pm := range rs.pending {
				if pm.end <= rs.rcvNxt {
					done = append(done, id)
				}
			}
			sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
			for _, id := range done {
				pm := rs.pending[id]
				delete(rs.pending, id)
				if e.OnMessage != nil {
					e.OnMessage(seg.peerVM, id, pm.size)
				}
			}
			rs.doneScratch = done[:0]
		}
	default:
		// Out of order: buffer (keep the longest range per start).
		if old, ok := rs.ooo[seg.seq]; !ok || end > old {
			rs.ooo[seg.seq] = end
		}
	}
	e.sendAck(seg, rs, p.CE)
}

// sendAck returns a cumulative acknowledgment to the data sender.
func (e *Endpoint) sendAck(data *segment, rs *rcvState, ce bool) {
	f := e.f
	peer, ok := f.endpoints[data.peerVM]
	if !ok {
		return
	}
	ack := &segment{
		peerVM: e.VMID,
		isAck:  true,
		ackSeq: rs.rcvNxt,
		ece:    ce,
		sentAt: data.sentAt, // echo for RTT sampling
	}
	f.send(e, &netsim.Packet{
		Src:     e.HostID,
		Dst:     peer.HostID,
		SrcVM:   e.VMID,
		DstVM:   data.peerVM,
		Size:    AckBytes,
		Prio:    e.opt.Prio,
		Payload: ack,
	})
}

// BytesReceived reports in-order payload bytes received from a peer VM.
func (e *Endpoint) BytesReceived(peerVM int) int64 {
	if rs, ok := e.rcv[peerVM]; ok {
		return rs.bytesIn
	}
	return 0
}
