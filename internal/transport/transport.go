// Package transport implements message-oriented reliable transports on
// top of the netsim packet simulator: a Reno-style TCP (the paper's
// baseline and the transport tenants run over Silo's pacer), DCTCP
// (ECN marking + α-weighted window reduction), and HULL (DCTCP
// congestion control over phantom-queue marking configured at the
// switches).
//
// A Message is the paper's unit of application data (§2): transports
// fragment messages into MSS-sized segments, deliver them reliably,
// and record per-message latency and retransmission-timeout counts —
// the quantities behind Figures 11–14 and Table 4.
package transport

import (
	"fmt"

	"repro/internal/netsim"
)

// Variant selects congestion-control behaviour.
type Variant int

// Transport variants.
const (
	// Reno is loss-based TCP with fast retransmit and go-back-N
	// recovery on timeout.
	Reno Variant = iota
	// DCTCP adds ECN-fraction-proportional window reduction
	// (Alizadeh et al., SIGCOMM 2010).
	DCTCP
)

func (v Variant) String() string {
	switch v {
	case Reno:
		return "reno"
	case DCTCP:
		return "dctcp"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Options configures an endpoint.
type Options struct {
	// Variant is the congestion controller.
	Variant Variant
	// MSS is the payload bytes per segment (wire adds HeaderBytes).
	MSS int
	// InitCwndSegs is the initial window in segments.
	InitCwndSegs int
	// MinRTONs floors the retransmission timeout. Stock OS stacks use
	// 200-300 ms; DCTCP/HULL deployments use ~10 ms.
	MinRTONs int64
	// Paced routes egress through the host's Silo pacer.
	Paced bool
	// Prio is the 802.1q class for this endpoint's packets.
	Prio int
	// DCTCPg is DCTCP's EWMA gain (default 1/16).
	DCTCPg float64
	// MaxCwndBytes caps the congestion window, standing in for the
	// socket send-buffer limit (default 1 MB).
	MaxCwndBytes float64
}

func (o *Options) fill() {
	if o.MSS <= 0 {
		o.MSS = 1460
	}
	if o.InitCwndSegs <= 0 {
		o.InitCwndSegs = 10
	}
	if o.MinRTONs <= 0 {
		o.MinRTONs = 200_000_000 // 200 ms, stock TCP
	}
	if o.DCTCPg <= 0 {
		o.DCTCPg = 1.0 / 16
	}
	if o.MaxCwndBytes <= 0 {
		o.MaxCwndBytes = 1 << 20
	}
}

// HeaderBytes is the per-segment wire overhead (Ethernet+IP+TCP).
const HeaderBytes = 58

// AckBytes is the wire size of a pure ack.
const AckBytes = 64

// Message is one application message.
type Message struct {
	ID        uint64
	SrcVM     int
	DstVM     int
	Size      int
	Submitted int64 // ns at submission
	Completed int64 // ns when the last byte was acknowledged; 0 while in flight
	RTOs      int   // retransmission timeouts suffered while in flight

	start, end int64 // sequence range [start, end)
	done       func(*Message)
}

// Latency returns the message latency in ns (valid after completion).
func (m *Message) Latency() int64 { return m.Completed - m.Submitted }

// Fabric wires transport endpoints to simulator hosts and demuxes
// deliveries by destination VM.
//
// Every clock read, timer, and ID counter is per-endpoint and runs on
// the endpoint host's own Sim, so a fabric over a parallel-built
// network needs no locks: a delivery executes on the destination
// host's island, acks are emitted from the receiver's island, and a
// connection's sender state is only ever touched by its own island's
// worker (or at epoch barriers, for SendMessage calls scheduled on the
// global loop).
type Fabric struct {
	nw        *netsim.Network
	endpoints map[int]*Endpoint
}

// NewFabric attaches to a network, taking over every host's Deliver
// hook.
func NewFabric(nw *netsim.Network) *Fabric {
	f := &Fabric{nw: nw, endpoints: make(map[int]*Endpoint)}
	for _, h := range nw.Hosts {
		h := h
		h.Deliver = func(p *netsim.Packet) { f.deliver(p) }
	}
	return f
}

// Endpoint returns the endpoint registered for a VM, if any.
func (f *Fabric) Endpoint(vmID int) (*Endpoint, bool) {
	e, ok := f.endpoints[vmID]
	return e, ok
}

// AddEndpoint registers a VM endpoint on a host.
func (f *Fabric) AddEndpoint(vmID, hostID int, opt Options) *Endpoint {
	opt.fill()
	h := f.nw.Hosts[hostID]
	e := &Endpoint{
		f:      f,
		VMID:   vmID,
		HostID: hostID,
		host:   h,
		sim:    h.Sim(),
		idBase: uint64(vmID+1) << 32,
		opt:    opt,
		conns:  make(map[int]*Conn),
		rcv:    make(map[int]*rcvState),
	}
	f.endpoints[vmID] = e
	return e
}

// send injects a packet from an endpoint's host, paced or not. Packet
// IDs are endpoint-scoped — high 32 bits identify the VM, low 32 count
// its emissions — so they are unique fabric-wide and identical at any
// worker count without a shared counter.
func (f *Fabric) send(e *Endpoint, p *netsim.Packet) {
	e.nextPkt++
	p.ID = e.idBase | e.nextPkt
	if e.opt.Paced && e.host.Paced() {
		e.host.SendPaced(e.VMID, p)
		return
	}
	e.host.Send(p)
}

// deliver demuxes an arriving packet to its destination endpoint.
func (f *Fabric) deliver(p *netsim.Packet) {
	e, ok := f.endpoints[p.DstVM]
	if !ok {
		return
	}
	seg, ok := p.Payload.(*segment)
	if !ok {
		return
	}
	if seg.isAck {
		if c, ok2 := e.conns[seg.peerVM]; ok2 {
			c.onAck(seg)
		}
		return
	}
	e.onData(p, seg)
}

// segment is the transport payload riding in netsim packets.
type segment struct {
	peerVM int // for data: sender VM; for ack: receiver VM (ack source)
	seq    int64
	length int
	sentAt int64 // original transmission time, echoed for RTT sampling
	isAck  bool
	ackSeq int64
	ece    bool

	// Message framing: the message this segment belongs to, its final
	// sequence offset and size, so the receiver can deliver complete
	// messages to the application.
	msgID   uint64
	msgEnd  int64
	msgSize int
}
