package transport

import (
	"testing"
)

// TestRTORecoveryAcrossLinkDeath kills the path in the middle of a
// message — not before it, as in the blackhole test below — by failing
// the source rack's uplink once the transfer is under way, restoring
// it later. Go-back-N must complete the message after the restore,
// with the timeouts charged to it and no data lost or duplicated.
func TestRTORecoveryAcrossLinkDeath(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{MinRTONs: 5_000_000})
	f.AddEndpoint(200, 3, Options{}) // other rack: path crosses tor0's uplink
	var done *Message
	const size = 400_000
	m := src.SendMessage(200, size, func(mm *Message) { done = mm })

	up := nw.Queues[nw.Tree.RackUpPortID(0)]
	// 400 KB at 10 Gbps needs ~320 µs of wire time plus slow-start
	// ramp; fail at 200 µs — squarely mid-message — and restore 30 ms
	// later, past several RTO firings.
	nw.Sim.At(200_000, func() { up.Fail() })
	nw.Sim.At(30_000_000, func() { up.Restore() })
	nw.Sim.Run(300e9)

	if done == nil {
		t.Fatal("message never completed after link restore")
	}
	if done != m {
		t.Fatal("wrong message completed")
	}
	c := src.Conn(200)
	if c.RTOCount == 0 {
		t.Fatal("mid-message link death should have forced at least one RTO")
	}
	if done.RTOs == 0 {
		t.Error("message should carry the RTOs that hit it")
	}
	if up.Stats.FaultDroppedPkts == 0 {
		t.Error("link death dropped nothing — fault not exercised")
	}
	dst, _ := f.Endpoint(200)
	if got := dst.BytesReceived(100); got != size {
		t.Errorf("receiver got %d bytes, want %d", got, size)
	}
	// Completion must postdate the restore: the tail of the message
	// could only cross after the link came back.
	if done.Completed < 30_000_000 {
		t.Errorf("message completed at %d ns, before the link was restored", done.Completed)
	}
}

// TestRTORecoveryAfterBlackhole: a destination that appears only after
// the first transmissions are lost forces timeouts; the transfer must
// still complete, with the timeouts charged to the message.
func TestRTORecoveryAfterBlackhole(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{MinRTONs: 5_000_000})
	var done *Message
	m := src.SendMessage(200, 50_000, func(mm *Message) { done = mm })
	// The destination endpoint does not exist yet: segments are
	// silently dropped at emission.
	nw.Sim.Run(20_000_000) // let a few RTOs fire
	c := src.Conn(200)
	if c.RTOCount == 0 {
		t.Fatal("no RTO against a blackholed destination")
	}
	// The timeout backoff must have grown.
	if c.backoff < 2 {
		t.Errorf("backoff = %d, want exponential growth", c.backoff)
	}
	// Now the destination comes up; go-back-N retransmission delivers.
	f.AddEndpoint(200, 1, Options{})
	nw.Sim.Run(300e9)
	if done == nil {
		t.Fatal("message never completed after destination appeared")
	}
	if done.RTOs == 0 {
		t.Error("message should carry its RTO count")
	}
	if m.Completed == 0 {
		t.Error("message completion not stamped")
	}
	dst, _ := f.Endpoint(200)
	if got := dst.BytesReceived(100); got != 50_000 {
		t.Errorf("receiver got %d bytes", got)
	}
}

// TestBackoffResetsAfterProgress: after recovery, new acks reset the
// exponential backoff.
func TestBackoffResetsAfterProgress(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{MinRTONs: 5_000_000})
	src.SendMessage(200, 20_000, nil)
	nw.Sim.Run(30_000_000)
	c := src.Conn(200)
	if c.backoff < 2 {
		t.Skip("no backoff accrued")
	}
	f.AddEndpoint(200, 1, Options{})
	nw.Sim.Run(300e9)
	if c.backoff != 1 {
		t.Errorf("backoff = %d after successful delivery, want 1", c.backoff)
	}
}

// TestDupAckFastRetransmit drives a single-segment loss through a
// tiny-buffer queue and verifies fast retransmit (not a timeout)
// repairs it.
func TestDupAckFastRetransmit(t *testing.T) {
	nw := testNet(t, 20e3) // tiny buffers force sporadic drops
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{MinRTONs: 200_000_000})
	f.AddEndpoint(200, 1, Options{})
	done := 0
	src.SendMessage(200, 2_000_000, func(m *Message) { done++ })
	nw.Sim.Run(400e9)
	if done != 1 {
		t.Fatal("transfer incomplete")
	}
	c := src.Conn(200)
	if nw.TotalDrops() > 0 && c.FastRetx == 0 && c.RTOCount == 0 {
		t.Error("drops occurred but no recovery was exercised")
	}
	// With a 200 ms min RTO and fast retransmit available, recovery
	// should predominantly avoid timeouts.
	if c.FastRetx == 0 {
		t.Skip("no drops in this configuration")
	}
}

// TestMaxCwndCapRespected: the window never exceeds the configured
// send-buffer cap.
func TestMaxCwndCapRespected(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{MaxCwndBytes: 64 << 10})
	f.AddEndpoint(200, 1, Options{})
	src.SendMessage(200, 20_000_000, nil)
	worst := 0.0
	var poll func()
	c := src.Conn(200)
	poll = func() {
		if c.cwnd > worst {
			worst = c.cwnd
		}
		if nw.Sim.Now() < 50_000_000 {
			nw.Sim.After(100_000, poll)
		}
	}
	nw.Sim.After(0, poll)
	nw.Sim.Run(100e9)
	if worst > 64<<10 {
		t.Errorf("cwnd reached %v, cap 64KiB", worst)
	}
}

// TestAckClockPacing: acks echo the original send time so RTT samples
// track the path, shrinking RTO toward the floor.
func TestAckClockPacing(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{MinRTONs: 10_000_000})
	f.AddEndpoint(200, 1, Options{})
	src.SendMessage(200, 1_000_000, nil)
	nw.Sim.Run(100e9)
	c := src.Conn(200)
	if c.srtt == 0 {
		t.Fatal("no RTT samples")
	}
	// The path RTT is microseconds; srtt must reflect that, and the
	// RTO must sit at the configured floor.
	if c.srtt > 5_000_000 {
		t.Errorf("srtt = %v ns, implausibly high", c.srtt)
	}
	if c.rto != 10_000_000 {
		t.Errorf("rto = %d, want the 10 ms floor", c.rto)
	}
}
