package transport

import (
	"sort"

	"repro/internal/netsim"
)

// Endpoint is one VM's transport stack. All of its state — connection
// windows, receive reassembly, ID counters — belongs to the island Sim
// of its host; under a ParallelSim only that island's worker (or the
// coordinator at barriers) may touch it.
type Endpoint struct {
	f      *Fabric
	VMID   int
	HostID int
	host   *netsim.Host
	sim    *netsim.Sim
	opt    Options

	// idBase is VMID+1 shifted into the high word; message and packet
	// IDs are idBase | counter, unique without fabric-wide state.
	idBase    uint64
	nextPkt   uint64
	nextMsgID uint64

	conns map[int]*Conn     // by remote VM (sender side)
	rcv   map[int]*rcvState // by remote VM (receiver side)

	// OnMessage, if set, is invoked at the receiver exactly once per
	// message, when the message's final byte has arrived in order.
	OnMessage func(srcVM int, msgID uint64, size int)
}

// Options returns the endpoint's configuration.
func (e *Endpoint) Options() Options { return e.opt }

// Conn returns (creating if needed) the sender-side connection to a
// remote VM.
func (e *Endpoint) Conn(dstVM int) *Conn {
	if c, ok := e.conns[dstVM]; ok {
		return c
	}
	c := newConn(e, dstVM)
	e.conns[dstVM] = c
	return c
}

// SendMessage queues a message to dstVM; done (optional) fires at the
// sender when the final byte is cumulatively acknowledged.
func (e *Endpoint) SendMessage(dstVM, size int, done func(*Message)) *Message {
	return e.Conn(dstVM).sendMessage(size, done)
}

// rcvState is per-sender receiver state: cumulative expected sequence
// plus an out-of-order reassembly buffer.
type rcvState struct {
	rcvNxt int64
	ooo    map[int64]int64 // seq -> end
	// bytesIn counts in-order delivered payload bytes.
	bytesIn int64
	// pending tracks message frames whose completion has not yet been
	// delivered to the application, keyed by message ID.
	pending map[uint64]pendingMsg
	// doneScratch is reused across drains for the sorted completion
	// pass in onData.
	doneScratch []uint64
}

// pendingMsg is a message frame awaiting receiver-side completion.
type pendingMsg struct {
	end  int64
	size int
}

// Conn is the sender side of a one-directional byte stream carrying
// messages.
type Conn struct {
	e     *Endpoint
	dstVM int

	// Sequence state (bytes).
	sndUna, sndNxt, writeEnd int64

	// Congestion control.
	cwnd     float64
	ssthresh float64
	dupacks  int
	inFR     bool  // fast recovery
	recover  int64 // sndNxt when loss was detected

	// DCTCP state.
	alpha       float64
	ackedBytes  float64
	markedBytes float64
	windowEnd   int64

	// RTT/RTO.
	srtt, rttvar float64 // ns
	rto          int64
	rtoArmed     bool
	rtoGen       uint64
	backoff      int64

	// Messages in flight or queued.
	msgs []*Message

	// Stats.
	RTOCount    int
	FastRetx    int
	BytesAcked  int64
	SegmentsOut int64
}

func newConn(e *Endpoint, dstVM int) *Conn {
	return &Conn{
		e:        e,
		dstVM:    dstVM,
		cwnd:     float64(e.opt.InitCwndSegs * e.opt.MSS),
		ssthresh: 1 << 30,
		rto:      e.opt.MinRTONs,
		backoff:  1,
	}
}

func (c *Conn) sendMessage(size int, done func(*Message)) *Message {
	c.e.nextMsgID++
	m := &Message{
		ID:        c.e.idBase | c.e.nextMsgID,
		SrcVM:     c.e.VMID,
		DstVM:     c.dstVM,
		Size:      size,
		Submitted: c.e.sim.Now(),
		start:     c.writeEnd,
		end:       c.writeEnd + int64(size),
		done:      done,
	}
	c.writeEnd = m.end
	c.msgs = append(c.msgs, m)
	c.trySend()
	return m
}

// flightSize returns unacknowledged bytes.
func (c *Conn) flightSize() float64 { return float64(c.sndNxt - c.sndUna) }

// trySend emits segments while the window allows.
func (c *Conn) trySend() {
	mss := int64(c.e.opt.MSS)
	for c.sndNxt < c.writeEnd && c.flightSize()+float64(mss) <= c.cwnd+1e-9 {
		n := c.writeEnd - c.sndNxt
		if n > mss {
			n = mss
		}
		c.emit(c.sndNxt, int(n))
		c.sndNxt += n
	}
	c.armRTO()
}

// emit transmits bytes [seq, seq+n).
func (c *Conn) emit(seq int64, n int) {
	f := c.e.f
	dst, ok := f.endpoints[c.dstVM]
	if !ok {
		return
	}
	seg := &segment{
		peerVM: c.e.VMID,
		seq:    seq,
		length: n,
		sentAt: c.e.sim.Now(),
	}
	// Attach framing for the message this segment belongs to.
	for _, m := range c.msgs {
		if seq >= m.start && seq < m.end {
			seg.msgID = m.ID
			seg.msgEnd = m.end
			seg.msgSize = m.Size
			break
		}
	}
	f.send(c.e, &netsim.Packet{
		Src:        c.e.HostID,
		Dst:        dst.HostID,
		SrcVM:      c.e.VMID,
		DstVM:      c.dstVM,
		Size:       n + HeaderBytes,
		Prio:       c.e.opt.Prio,
		ECNCapable: c.e.opt.Variant == DCTCP,
		Payload:    seg,
	})
	c.SegmentsOut++
}

// onAck handles a cumulative acknowledgment.
func (c *Conn) onAck(seg *segment) {
	opt := c.e.opt
	mss := float64(opt.MSS)
	now := c.e.sim.Now()

	// RTT sample from the echoed send time.
	if seg.sentAt > 0 {
		sample := float64(now - seg.sentAt)
		if c.srtt == 0 {
			c.srtt = sample
			c.rttvar = sample / 2
		} else {
			d := sample - c.srtt
			if d < 0 {
				d = -d
			}
			c.rttvar = 0.75*c.rttvar + 0.25*d
			c.srtt = 0.875*c.srtt + 0.125*sample
		}
		rto := int64(c.srtt + 4*c.rttvar)
		if rto < opt.MinRTONs {
			rto = opt.MinRTONs
		}
		c.rto = rto
	}

	// DCTCP mark accounting (on every ack, per the exact-echo spec).
	if opt.Variant == DCTCP {
		adv := seg.ackSeq - c.sndUna
		if adv < 0 {
			adv = 0
		}
		bytes := float64(adv)
		if bytes == 0 {
			bytes = mss // dupack approximates one segment's worth
		}
		c.ackedBytes += bytes
		if seg.ece {
			c.markedBytes += bytes
		}
		if c.sndUna >= c.windowEnd || seg.ackSeq >= c.windowEnd {
			if c.ackedBytes > 0 {
				frac := c.markedBytes / c.ackedBytes
				g := opt.DCTCPg
				c.alpha = (1-g)*c.alpha + g*frac
				if frac > 0 {
					c.cwnd = c.cwnd * (1 - c.alpha/2)
					if c.cwnd < 2*mss {
						c.cwnd = 2 * mss
					}
				}
			}
			c.ackedBytes, c.markedBytes = 0, 0
			c.windowEnd = c.sndNxt
		}
	}

	switch {
	case seg.ackSeq > c.sndUna:
		newly := seg.ackSeq - c.sndUna
		c.sndUna = seg.ackSeq
		c.BytesAcked += newly
		c.dupacks = 0
		c.backoff = 1
		if c.inFR {
			if c.sndUna >= c.recover {
				// Full recovery.
				c.inFR = false
				c.cwnd = c.ssthresh
			} else {
				// NewReno partial ack: the next hole is lost too;
				// retransmit it immediately and stay in recovery.
				n := c.writeEnd - c.sndUna
				if n > int64(opt.MSS) {
					n = int64(opt.MSS)
				}
				if n > 0 {
					c.emit(c.sndUna, int(n))
				}
			}
		}
		if !c.inFR {
			if c.cwnd < c.ssthresh {
				c.cwnd += float64(newly) // slow start
			} else {
				c.cwnd += mss * float64(newly) / c.cwnd // AIMD
			}
			if c.cwnd > opt.MaxCwndBytes {
				c.cwnd = opt.MaxCwndBytes
			}
		}
		c.completeMessages(now)
		c.armRTO()
	case seg.ackSeq == c.sndUna && c.sndNxt > c.sndUna:
		c.dupacks++
		if c.dupacks == 3 && !c.inFR {
			// Fast retransmit.
			c.FastRetx++
			fs := c.flightSize()
			c.ssthresh = fs / 2
			if c.ssthresh < 2*mss {
				c.ssthresh = 2 * mss
			}
			c.cwnd = c.ssthresh
			c.inFR = true
			c.recover = c.sndNxt
			n := c.writeEnd - c.sndUna
			if n > int64(opt.MSS) {
				n = int64(opt.MSS)
			}
			if n > 0 {
				c.emit(c.sndUna, int(n))
			}
		}
	}
	c.trySend()
}

// completeMessages fires callbacks for messages fully acknowledged.
func (c *Conn) completeMessages(now int64) {
	for len(c.msgs) > 0 && c.msgs[0].end <= c.sndUna {
		m := c.msgs[0]
		c.msgs = c.msgs[1:]
		m.Completed = now
		if m.done != nil {
			m.done(m)
		}
	}
}

// armRTO (re)schedules the retransmission timer.
func (c *Conn) armRTO() {
	if c.sndUna >= c.sndNxt {
		c.rtoArmed = false
		return
	}
	c.rtoGen++
	gen := c.rtoGen
	c.rtoArmed = true
	timeout := c.rto * c.backoff
	if max := int64(4_000_000_000); timeout > max {
		timeout = max
	}
	// The retransmission timer lives on the sender host's island sim,
	// like every other touch of this connection's state.
	c.e.sim.After(timeout, func() {
		if c.rtoGen != gen || !c.rtoArmed {
			return
		}
		c.onRTO()
	})
}

// onRTO handles a retransmission timeout: go-back-N.
func (c *Conn) onRTO() {
	if c.sndUna >= c.sndNxt {
		return
	}
	mss := float64(c.e.opt.MSS)
	c.RTOCount++
	// Charge the timeout to every message overlapping the in-flight
	// window.
	for _, m := range c.msgs {
		if m.start < c.sndNxt && m.end > c.sndUna {
			m.RTOs++
		}
	}
	fs := c.flightSize()
	c.ssthresh = fs / 2
	if c.ssthresh < 2*mss {
		c.ssthresh = 2 * mss
	}
	c.cwnd = mss
	c.sndNxt = c.sndUna
	c.dupacks = 0
	c.inFR = false
	if c.backoff < 64 {
		c.backoff *= 2
	}
	c.trySend()
}

// sortedOOO returns buffered out-of-order ranges in seq order (test
// helper).
func (r *rcvState) sortedOOO() []int64 {
	keys := make([]int64, 0, len(r.ooo))
	for k := range r.ooo {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
