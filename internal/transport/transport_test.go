package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/pacer"
	"repro/internal/topology"
)

const gbps = 1e9 / 8

func testNet(t *testing.T, bufBytes float64) *netsim.Network {
	t.Helper()
	tree, err := topology.New(topology.Config{
		Pods:           1,
		RacksPerPod:    2,
		ServersPerRack: 3,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    bufBytes,
		NICBufferBytes: 312e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
}

func TestSingleMessageDelivery(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{})
	f.AddEndpoint(200, 1, Options{})
	var completed *Message
	src.SendMessage(200, 100_000, func(m *Message) { completed = m })
	nw.Sim.Run(5e9)
	if completed == nil {
		t.Fatal("message never completed")
	}
	if completed.Latency() <= 0 {
		t.Errorf("latency = %d", completed.Latency())
	}
	if completed.RTOs != 0 {
		t.Errorf("clean transfer suffered %d RTOs", completed.RTOs)
	}
	dst, _ := f.Endpoint(200)
	if got := dst.BytesReceived(100); got != 100_000 {
		t.Errorf("receiver got %d bytes, want 100000", got)
	}
}

func TestMessageLatencyScalesWithSize(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{})
	f.AddEndpoint(200, 1, Options{})
	var small, large *Message
	src.SendMessage(200, 10_000, func(m *Message) { small = m })
	nw.Sim.Run(5e9)
	src.SendMessage(200, 10_000_000, func(m *Message) { large = m })
	nw.Sim.Run(60e9)
	if small == nil || large == nil {
		t.Fatal("messages incomplete")
	}
	if large.Latency() < 10*small.Latency() {
		t.Errorf("10MB latency %d not >> 10KB latency %d", large.Latency(), small.Latency())
	}
	// 10 MB at 10 Gbps is at least 8 ms.
	if large.Latency() < 8_000_000 {
		t.Errorf("10MB finished impossibly fast: %d ns", large.Latency())
	}
}

func TestBulkThroughputNearLineRate(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{})
	f.AddEndpoint(200, 1, Options{})
	var done *Message
	src.SendMessage(200, 50_000_000, func(m *Message) { done = m })
	nw.Sim.Run(120e9)
	if done == nil {
		t.Fatal("bulk transfer incomplete")
	}
	gput := float64(done.Size) / (float64(done.Latency()) / 1e9) // bytes/sec
	if gput < 0.7*10*gbps {
		t.Errorf("goodput %.3g B/s < 70%% of line rate", gput)
	}
}

func TestCongestionLossRecovery(t *testing.T) {
	// Two senders share one 10 Gbps down-port with small buffers:
	// drops must occur, and both transfers must still complete.
	nw := testNet(t, 30e3)
	f := NewFabric(nw)
	s1 := f.AddEndpoint(100, 0, Options{MinRTONs: 10_000_000})
	s2 := f.AddEndpoint(101, 2, Options{MinRTONs: 10_000_000})
	f.AddEndpoint(200, 1, Options{})
	var d1, d2 *Message
	s1.SendMessage(200, 5_000_000, func(m *Message) { d1 = m })
	s2.SendMessage(200, 5_000_000, func(m *Message) { d2 = m })
	nw.Sim.Run(300e9)
	if d1 == nil || d2 == nil {
		t.Fatalf("transfers incomplete: %v %v", d1 != nil, d2 != nil)
	}
	if nw.TotalDrops() == 0 {
		t.Error("expected drops with 30 KB buffers and 2:1 incast")
	}
	c1 := s1.Conn(200)
	c2 := s2.Conn(200)
	if c1.FastRetx+c2.FastRetx+c1.RTOCount+c2.RTOCount == 0 {
		t.Error("no loss recovery events despite drops")
	}
}

func TestIncastRTOs(t *testing.T) {
	// Classic incast: many senders burst simultaneously to one
	// receiver through a shallow buffer; some flows hit timeouts
	// (paper Figure 13's mechanism).
	nw := testNet(t, 30e3)
	f := NewFabric(nw)
	f.AddEndpoint(200, 1, Options{})
	senders := []*Endpoint{
		f.AddEndpoint(100, 0, Options{MinRTONs: 10_000_000}),
		f.AddEndpoint(101, 2, Options{MinRTONs: 10_000_000}),
		f.AddEndpoint(102, 3, Options{MinRTONs: 10_000_000}),
		f.AddEndpoint(103, 4, Options{MinRTONs: 10_000_000}),
		f.AddEndpoint(104, 5, Options{MinRTONs: 10_000_000}),
	}
	completed := 0
	rtos := 0
	for _, s := range senders {
		s.SendMessage(200, 300_000, func(m *Message) {
			completed++
			rtos += m.RTOs
		})
	}
	nw.Sim.Run(300e9)
	if completed != len(senders) {
		t.Fatalf("completed %d of %d", completed, len(senders))
	}
	if rtos == 0 {
		t.Error("expected at least one message-level RTO under incast")
	}
}

func TestDCTCPKeepsQueuesShorter(t *testing.T) {
	// DCTCP with ECN marking should complete a congested transfer with
	// far fewer drops than Reno through the same buffers.
	run := func(variant Variant, ecnK int) (drops int64, ok bool) {
		tree, err := topology.New(topology.Config{
			Pods: 1, RacksPerPod: 2, ServersPerRack: 3, SlotsPerServer: 4,
			LinkBps: 10 * gbps, BufferBytes: 60e3, NICBufferBytes: 312e3,
			RackOversub: 1, PodOversub: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200, ECNThresholdBytes: ecnK})
		f := NewFabric(nw)
		opt := Options{Variant: variant, MinRTONs: 10_000_000}
		s1 := f.AddEndpoint(100, 0, opt)
		s2 := f.AddEndpoint(101, 2, opt)
		f.AddEndpoint(200, 1, Options{})
		done := 0
		s1.SendMessage(200, 8_000_000, func(m *Message) { done++ })
		s2.SendMessage(200, 8_000_000, func(m *Message) { done++ })
		nw.Sim.Run(300e9)
		return nw.TotalDrops(), done == 2
	}
	renoDrops, renoOK := run(Reno, 0)
	dctcpDrops, dctcpOK := run(DCTCP, 20e3)
	if !renoOK || !dctcpOK {
		t.Fatalf("transfers incomplete: reno=%v dctcp=%v", renoOK, dctcpOK)
	}
	if dctcpDrops >= renoDrops {
		t.Errorf("DCTCP drops (%d) should be below Reno's (%d)", dctcpDrops, renoDrops)
	}
}

func TestPacedTransportConformsAndAvoidsLoss(t *testing.T) {
	// Silo mode: both senders paced to 2 Gbps with small bursts; the
	// shared 10 Gbps port never drops even with shallow buffers.
	nw := testNet(t, 60e3)
	f := NewFabric(nw)
	for i, hid := range []int{0, 2} {
		h := nw.Hosts[hid]
		h.EnablePacing(pacer.NewBatcher(10 * gbps))
		vm := pacer.NewVM(100+i, pacer.Guarantee{
			BandwidthBps: 2 * gbps, BurstBytes: 3000, BurstRateBps: 10 * gbps, MTUBytes: 1518,
		}, 0)
		h.AddVM(vm)
	}
	s1 := f.AddEndpoint(100, 0, Options{Paced: true})
	s2 := f.AddEndpoint(101, 2, Options{Paced: true})
	f.AddEndpoint(200, 1, Options{})
	done := 0
	s1.SendMessage(200, 2_000_000, func(m *Message) { done++ })
	s2.SendMessage(200, 2_000_000, func(m *Message) { done++ })
	nw.Sim.Run(300e9)
	if done != 2 {
		t.Fatalf("completed %d of 2", done)
	}
	if drops := nw.TotalDrops(); drops != 0 {
		t.Errorf("paced compliant traffic dropped %d packets", drops)
	}
	// Goodput per flow ≈ its guarantee (2 Gbps), not a fair half of
	// 10 Gbps.
	c1 := s1.Conn(200)
	elapsed := float64(nw.Sim.Now())
	_ = elapsed
	if c1.RTOCount != 0 {
		t.Errorf("paced flow suffered %d RTOs", c1.RTOCount)
	}
}

func TestOnMessageReceiverCallback(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{})
	dst := f.AddEndpoint(200, 1, Options{})
	events := 0
	dst.OnMessage = func(srcVM int, msgID uint64, size int) {
		if srcVM != 100 {
			t.Errorf("OnMessage srcVM = %d", srcVM)
		}
		if size != 50_000 {
			t.Errorf("OnMessage size = %d, want 50000", size)
		}
		events++
	}
	m := src.SendMessage(200, 50_000, nil)
	nw.Sim.Run(5e9)
	if events != 1 {
		t.Errorf("OnMessage fired %d times, want exactly 1", events)
	}
	if m.ID == 0 {
		t.Error("message ID not assigned")
	}
}

func TestOnMessagePerMessage(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{})
	dst := f.AddEndpoint(200, 1, Options{})
	var sizes []int
	dst.OnMessage = func(srcVM int, msgID uint64, size int) { sizes = append(sizes, size) }
	for i := 1; i <= 4; i++ {
		src.SendMessage(200, i*10_000, nil)
	}
	nw.Sim.Run(10e9)
	if len(sizes) != 4 {
		t.Fatalf("OnMessage fired %d times, want 4", len(sizes))
	}
	for i, s := range sizes {
		if s != (i+1)*10_000 {
			t.Errorf("message %d size = %d", i, s)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Reno.String() != "reno" || DCTCP.String() != "dctcp" {
		t.Error("bad variant strings")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should render")
	}
}

func TestMessagesCompleteInOrderPerConn(t *testing.T) {
	nw := testNet(t, 312e3)
	f := NewFabric(nw)
	src := f.AddEndpoint(100, 0, Options{})
	f.AddEndpoint(200, 1, Options{})
	var order []uint64
	for i := 0; i < 5; i++ {
		src.SendMessage(200, 20_000, func(m *Message) { order = append(order, m.ID) })
	}
	nw.Sim.Run(10e9)
	if len(order) != 5 {
		t.Fatalf("completed %d of 5", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("out-of-order completion: %v", order)
		}
	}
}

func TestRcvStateOOOHelpers(t *testing.T) {
	rs := &rcvState{ooo: map[int64]int64{30: 40, 10: 20}}
	keys := rs.sortedOOO()
	if len(keys) != 2 || keys[0] != 10 || keys[1] != 30 {
		t.Errorf("sortedOOO = %v", keys)
	}
}
