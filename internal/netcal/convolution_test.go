package netcal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvolveRateLatency(t *testing.T) {
	// β_{R1,T1} ⊗ β_{R2,T2} = β_{min(R1,R2), T1+T2}.
	a := NewRateLatency(1000, 0.1)
	b := NewRateLatency(600, 0.3)
	c := Convolve(a, b)
	want := NewRateLatency(600, 0.4)
	for _, x := range []float64{0, 0.2, 0.4, 0.5, 1, 5} {
		if !almostEq(c.Eval(x), want.Eval(x)) {
			t.Errorf("conv(%v) = %v, want %v", x, c.Eval(x), want.Eval(x))
		}
	}
}

func TestConvolvePureRates(t *testing.T) {
	a := NewRateLatency(1000, 0)
	b := NewRateLatency(400, 0)
	c := Convolve(a, b)
	if got := c.LongTermRate(); !almostEq(got, 400) {
		t.Errorf("long-term rate = %v, want 400 (min)", got)
	}
	if got := c.Eval(1); !almostEq(got, 400) {
		t.Errorf("conv(1) = %v", got)
	}
}

func TestConvolveIdentityWithZero(t *testing.T) {
	a := NewRateLatency(100, 0.5)
	if got := Convolve(a, Curve{}); !almostEq(got.Eval(1), a.Eval(1)) {
		t.Error("convolve with zero curve should return the other")
	}
	if got := Convolve(Curve{}, a); !almostEq(got.Eval(1), a.Eval(1)) {
		t.Error("convolve with zero curve should return the other")
	}
}

func TestConvolveCommutativeProperty(t *testing.T) {
	f := func(r1, r2 uint16, l1, l2 uint8) bool {
		a := NewRateLatency(float64(r1)+1, float64(l1)/100)
		b := NewRateLatency(float64(r2)+1, float64(l2)/100)
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for _, x := range []float64{0, 0.5, 1, 3, 10} {
			if !almostEq(ab.Eval(x), ba.Eval(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEndToEndDelayBoundSingleHop(t *testing.T) {
	a := NewTokenBucket(500, 1000)
	s := NewRateLatency(1000, 0)
	if got, want := EndToEndDelayBound(a, s), QueueBound(a, s); !almostEq(got, want) {
		t.Errorf("single hop = %v, want %v", got, want)
	}
	if EndToEndDelayBound(a) != 0 {
		t.Error("no hops should bound at 0")
	}
}

func TestPayBurstsOnlyOnce(t *testing.T) {
	// The classic result: through two identical hops, the end-to-end
	// (convolved) bound pays the burst once; the per-hop sum pays it
	// at every hop (with inflation), so conv <= sum, strictly for
	// bursty arrivals.
	a := NewTokenBucket(400, 2000)
	h1 := NewRateLatency(1000, 0)
	h2 := NewRateLatency(1000, 0)
	conv := EndToEndDelayBound(a, h1, h2)
	sum := PerHopDelayBoundSum(a, h1, h2)
	if conv > sum+1e-12 {
		t.Errorf("convolved bound %v exceeds per-hop sum %v", conv, sum)
	}
	if !(conv < sum) {
		t.Errorf("expected strict tightening: conv %v vs sum %v", conv, sum)
	}
	// Single-hop delay = 2 s (2000/1000); e2e through two pure-rate
	// hops stays 2 s.
	if !almostEq(conv, 2.0) {
		t.Errorf("conv bound = %v, want 2.0", conv)
	}
}

// Property: the convolved end-to-end bound never exceeds the per-hop
// sum (the ablation justifying why Silo's additive budget is safe).
func TestConvTighterProperty(t *testing.T) {
	f := func(rate, burst uint16, c1, c2 uint16) bool {
		r := float64(rate) + 1
		b := float64(burst) + 1
		a := NewTokenBucket(r, b)
		h1 := NewRateLatency(r+float64(c1)+1, 0)
		h2 := NewRateLatency(r+float64(c2)+1, 0)
		conv := EndToEndDelayBound(a, h1, h2)
		sum := PerHopDelayBoundSum(a, h1, h2)
		if math.IsInf(sum, 1) {
			return true
		}
		return conv <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPerHopSumOverloaded(t *testing.T) {
	a := NewTokenBucket(2000, 10)
	h := NewRateLatency(1000, 0)
	if !math.IsInf(PerHopDelayBoundSum(a, h), 1) {
		t.Error("overloaded hop should report +Inf")
	}
}
