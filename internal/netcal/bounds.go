package netcal

import "math"

// QueueBound returns the maximum horizontal deviation between arrival
// curve a and service curve s — the worst-case queuing delay (seconds)
// a packet experiences at a port serving a-shaped traffic (paper
// Fig. 6b: the largest q such that s(t) = a(t − q)).
//
// If the arrival curve's long-term rate exceeds the service curve's,
// the queue grows without bound and +Inf is returned.
func QueueBound(a, s Curve) float64 {
	if a.Zero() {
		return 0
	}
	if a.LongTermRate() > s.LongTermRate() {
		return math.Inf(1)
	}
	// Fast path: a zero-latency rate service (the only service curve the
	// placement manager builds) has a single breakpoint at the origin,
	// so the horizontal deviation is attained at a breakpoint of the
	// arrival curve and no candidate enumeration is needed.
	if len(s.segs) == 1 && s.segs[0].X == 0 && s.segs[0].Y == 0 {
		return boundAgainstRate(a, s.segs[0].Rate)
	}
	// The maximum horizontal deviation of piecewise-linear curves is
	// attained at a breakpoint of one of them: for each breakpoint
	// (t, y) of a, the delay is the time until s reaches y; for each
	// breakpoint of s at height y, the delay is measured back to where
	// a reached y. Checking the arrival curve's breakpoints plus the
	// service curve's breakpoint heights covers all candidates.
	best := 0.0
	consider := func(t, y float64) {
		ts := timeToReach(s, y)
		if ts == math.Inf(1) {
			best = math.Inf(1)
			return
		}
		if d := ts - t; d > best {
			best = d
		}
	}
	for _, seg := range a.segs {
		consider(seg.X, a.Eval(seg.X))
	}
	for _, seg := range s.segs {
		y := s.Eval(seg.X)
		ta := timeWhenArrived(a, y)
		consider(ta, y)
	}
	if math.IsInf(best, 1) {
		return best
	}
	if best < 0 {
		best = 0
	}
	return best
}

// boundAgainstRate returns the maximum horizontal deviation between
// arrival curve a and the pure-rate service β(t) = R·t, visiting only
// a's breakpoints and allocating nothing. The arithmetic matches the
// general QueueBound path (timeToReach over a single {0,0,R} segment)
// float for float.
func boundAgainstRate(a Curve, R float64) float64 {
	best := 0.0
	for _, seg := range a.segs {
		ts := 0.0
		if seg.Y > 0 {
			if R <= 0 {
				return math.Inf(1)
			}
			ts = seg.Y / R
		}
		if d := ts - seg.X; d > best {
			best = d
		}
	}
	return best
}

// QueueBoundTB returns QueueBound for the token-bucket arrival curve
// A(t) = rate·t + burst against the zero-latency rate service
// β(t) = svcRate·t, in closed form with no allocation. Results are
// float-for-float identical to QueueBound(NewTokenBucket(rate, burst),
// NewRateLatency(svcRate, 0)), except that a (numerically) negative
// burst — float residue an aggregate may carry after removals — clamps
// to a zero bound instead of panicking in the curve constructor.
func QueueBoundTB(rate, burst, svcRate float64) float64 {
	if rate == 0 && burst == 0 {
		return 0
	}
	if rate > svcRate {
		return math.Inf(1)
	}
	if burst <= 0 {
		return 0
	}
	if svcRate <= 0 {
		return math.Inf(1)
	}
	return burst / svcRate
}

// QueueBoundTwoPiece returns QueueBound for the two-piece rate-capped
// arrival curve A′(t) = min(peak·t + seed, rate·t + burst) against the
// zero-latency rate service β(t) = svcRate·t, in closed form with no
// allocation. The degenerate cases (peak <= rate, burst <= seed) fall
// back to the token bucket exactly as NewRateCapped does, so results
// are float-for-float identical to materializing the curves and
// calling QueueBound. This is the placement manager's admission-check
// hot path: it runs millions of times per rejected tenant request at
// datacenter scale.
func QueueBoundTwoPiece(rate, burst, peak, seed, svcRate float64) float64 {
	if peak <= rate || burst <= seed {
		return QueueBoundTB(rate, burst, svcRate)
	}
	if rate > svcRate {
		return math.Inf(1)
	}
	if svcRate <= 0 {
		// Arrival is nonzero (peak > rate >= 0) but the port serves
		// nothing: the queue never drains.
		return math.Inf(1)
	}
	// Breakpoints of A′: (0, seed) and the knee (tx, yx) where the peak
	// segment meets the token bucket — the same expressions NewRateCapped
	// stores.
	tx := (burst - seed) / (peak - rate)
	yx := seed + peak*tx
	best := 0.0
	if seed > 0 {
		best = seed / svcRate
	}
	if d := yx/svcRate - tx; d > best {
		best = d
	}
	if best < 0 {
		best = 0
	}
	return best
}

// BacklogTB returns Backlog for the token-bucket arrival curve
// A(t) = rate·t + burst against the zero-latency rate service
// β(t) = svcRate·t, in closed form with no allocation. Results are
// float-for-float identical to Backlog(NewTokenBucket(rate, burst),
// NewRateLatency(svcRate, 0)), except that a (numerically) negative
// burst clamps to zero instead of panicking in the constructor. The
// introspection plane derives every port's worst-case occupancy from
// the placement manager's aggregate scalars through this path.
func BacklogTB(rate, burst, svcRate float64) float64 {
	if rate == 0 && burst == 0 {
		return 0
	}
	if rate > svcRate {
		return math.Inf(1)
	}
	if burst < 0 {
		return 0
	}
	return burst
}

// BacklogTwoPiece returns Backlog for the two-piece rate-capped
// arrival curve A′(t) = min(peak·t + seed, rate·t + burst) against the
// zero-latency rate service β(t) = svcRate·t, in closed form. The
// degenerate cases fall back to the token bucket exactly as
// NewRateCapped does, so results are float-for-float identical to
// materializing the curves and calling Backlog. The deviation is
// attained at a breakpoint of A′: either the instantaneous burst at
// t = 0 or the knee of the peak cap.
func BacklogTwoPiece(rate, burst, peak, seed, svcRate float64) float64 {
	if peak <= rate || burst <= seed {
		return BacklogTB(rate, burst, svcRate)
	}
	if rate > svcRate {
		return math.Inf(1)
	}
	tx := (burst - seed) / (peak - rate)
	yx := seed + peak*tx
	best := 0.0
	if seed > best {
		best = seed
	}
	if d := yx - svcRate*tx; d > best {
		best = d
	}
	return best
}

// BusyPeriodTB returns BusyPeriod for the token-bucket arrival curve
// against the zero-latency rate service β(t) = svcRate·t, in closed
// form: the curves meet where svcRate·t = rate·t + burst. Results are
// float-for-float identical to the generic breakpoint scan, including
// its edge semantics (a zero-burst, positive-rate curve reports +Inf —
// the scan finds no strictly positive meeting point).
func BusyPeriodTB(rate, burst, svcRate float64) float64 {
	if rate == 0 && burst == 0 {
		return 0
	}
	if rate > svcRate {
		return math.Inf(1)
	}
	if svcRate > rate && burst > 0 {
		return burst / (svcRate - rate)
	}
	return math.Inf(1)
}

// BusyPeriodTwoPiece returns BusyPeriod for the two-piece rate-capped
// arrival curve against the zero-latency rate service β(t) = svcRate·t,
// in closed form, float-for-float identical to the generic scan over
// the materialized curves. The service line either crosses the peak
// segment before the knee (svcRate > peak), exactly grazes the knee, or
// crosses the token-bucket tail.
func BusyPeriodTwoPiece(rate, burst, peak, seed, svcRate float64) float64 {
	if peak <= rate || burst <= seed {
		return BusyPeriodTB(rate, burst, svcRate)
	}
	if rate > svcRate {
		return math.Inf(1)
	}
	tx := (burst - seed) / (peak - rate)
	yx := seed + peak*tx
	if svcRate > peak && seed > 0 {
		if t := seed / (svcRate - peak); t < tx {
			return t
		}
	}
	d := yx - svcRate*tx
	if d <= 0 {
		return tx
	}
	if svcRate > rate {
		return tx + d/(svcRate-rate)
	}
	return math.Inf(1)
}

// Backlog returns the maximum vertical deviation between a and s — the
// worst-case queue occupancy in bytes. +Inf if a's long-term rate
// exceeds s's.
func Backlog(a, s Curve) float64 {
	if a.Zero() {
		return 0
	}
	if a.LongTermRate() > s.LongTermRate() {
		return math.Inf(1)
	}
	best := 0.0
	consider := func(t float64) {
		if d := a.Eval(t) - s.Eval(t); d > best {
			best = d
		}
	}
	for _, seg := range a.segs {
		consider(seg.X)
	}
	for _, seg := range s.segs {
		consider(seg.X)
	}
	return best
}

// BusyPeriod returns the paper's p value: the maximum interval over
// which the port's queue must empty at least once — the first time
// t > 0 at which s(t) >= a(t). Kurose's analysis bounds the egress
// burst added by a switch by the traffic arriving within p. +Inf if the
// curves never meet.
func BusyPeriod(a, s Curve) float64 {
	if a.Zero() {
		return 0
	}
	if a.LongTermRate() > s.LongTermRate() {
		return math.Inf(1)
	}
	// Scan the merged breakpoints; within each interval both curves are
	// linear, so the meeting point solves exactly.
	xs := make([]float64, 0, len(a.segs)+len(s.segs))
	for _, seg := range a.segs {
		xs = append(xs, seg.X)
	}
	for _, seg := range s.segs {
		xs = append(xs, seg.X)
	}
	xs = dedupFloats(sortedFloats(xs))
	for i := 0; i < len(xs); i++ {
		x0 := xs[i]
		x1 := math.Inf(1)
		if i+1 < len(xs) {
			x1 = xs[i+1]
		}
		d0 := a.Eval(x0) - s.Eval(x0)
		if d0 <= 0 && x0 > 0 {
			return x0
		}
		ra := a.rateAt(x0)
		rs := s.rateAt(x0)
		if rs > ra && d0 > 0 {
			xc := x0 + d0/(rs-ra)
			if xc < x1 || math.IsInf(x1, 1) {
				return xc
			}
		}
	}
	return math.Inf(1)
}

// timeToReach returns the earliest t with c(t) >= y (Inf if never).
func timeToReach(c Curve, y float64) float64 {
	if y <= 0 {
		return 0
	}
	for i, seg := range c.segs {
		endX := math.Inf(1)
		if i+1 < len(c.segs) {
			endX = c.segs[i+1].X
		}
		endY := math.Inf(1)
		if !math.IsInf(endX, 1) {
			endY = seg.Y + seg.Rate*(endX-seg.X)
		} else if seg.Rate > 0 {
			endY = math.Inf(1)
		} else {
			endY = seg.Y
		}
		if y <= endY {
			if seg.Rate == 0 {
				if y <= seg.Y {
					return seg.X
				}
				continue
			}
			t := seg.X + (y-seg.Y)/seg.Rate
			if t < seg.X {
				t = seg.X
			}
			return t
		}
	}
	return math.Inf(1)
}

// timeWhenArrived returns the latest t with c(t) <= y, i.e. the moment
// the arrival curve last sat at height y; used to measure horizontal
// deviation back from a service-curve breakpoint. For a curve that
// jumps above y at t=0 it returns 0.
func timeWhenArrived(c Curve, y float64) float64 {
	if len(c.segs) == 0 {
		return 0
	}
	if c.Eval(0) >= y {
		return 0
	}
	t := timeToReach(c, y)
	if math.IsInf(t, 1) {
		return 0
	}
	return t
}

func sortedFloats(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	// insertion sort: slices here are tiny (a handful of breakpoints).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
