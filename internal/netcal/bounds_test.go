package netcal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueueBoundTokenBucket(t *testing.T) {
	// A_{B,S} into a pure-rate server C >= B: classic bound S/C.
	a := NewTokenBucket(500, 1000) // 500 B/s, 1000 B burst
	s := NewRateLatency(1000, 0)   // 1000 B/s server
	if got, want := QueueBound(a, s), 1.0; !almostEq(got, want) {
		t.Errorf("QueueBound = %v, want %v", got, want)
	}
}

func TestQueueBoundWithLatency(t *testing.T) {
	// Server latency adds directly to the horizontal deviation.
	a := NewTokenBucket(500, 1000)
	s := NewRateLatency(1000, 0.25)
	if got, want := QueueBound(a, s), 1.25; !almostEq(got, want) {
		t.Errorf("QueueBound = %v, want %v", got, want)
	}
}

func TestQueueBoundOverload(t *testing.T) {
	a := NewTokenBucket(2000, 10)
	s := NewRateLatency(1000, 0)
	if got := QueueBound(a, s); !math.IsInf(got, 1) {
		t.Errorf("QueueBound overloaded = %v, want +Inf", got)
	}
	if got := Backlog(a, s); !math.IsInf(got, 1) {
		t.Errorf("Backlog overloaded = %v, want +Inf", got)
	}
}

func TestQueueBoundZeroArrival(t *testing.T) {
	s := NewRateLatency(1000, 0)
	if got := QueueBound(Curve{}, s); got != 0 {
		t.Errorf("QueueBound(zero) = %v, want 0", got)
	}
	if got := Backlog(Curve{}, s); got != 0 {
		t.Errorf("Backlog(zero) = %v, want 0", got)
	}
	if got := BusyPeriod(Curve{}, s); got != 0 {
		t.Errorf("BusyPeriod(zero) = %v, want 0", got)
	}
}

func TestBacklogTokenBucket(t *testing.T) {
	// Peak-rate-capped arrivals into a slower server: backlog accrues
	// until the crossover, then shrinks. A'{rate=100,burst=1000,
	// peak=1000,seed=0} crosses its token-bucket piece at
	// tx = 1000/900 = 10/9 s; worst backlog there:
	// A(tx) = 1000·10/9, S(tx) = 500·10/9 -> 5000/9 bytes.
	a := NewRateCapped(100, 1000, 1000, 0)
	s := NewRateLatency(500, 0)
	if got, want := Backlog(a, s), 5000.0/9; !almostEq(got, want) {
		t.Errorf("Backlog = %v, want %v", got, want)
	}
}

func TestBacklogMatchesQueueBoundForPureRate(t *testing.T) {
	// For a pure-rate server C, backlog = C * queue-bound when the
	// worst horizontal and vertical deviations coincide at t=0 burst.
	a := NewTokenBucket(300, 600)
	s := NewRateLatency(1000, 0)
	qb := QueueBound(a, s)
	bl := Backlog(a, s)
	if !almostEq(bl, 1000*qb) {
		t.Errorf("backlog %v != C*qbound %v", bl, 1000*qb)
	}
}

func TestBusyPeriod(t *testing.T) {
	// a = 500t + 1000, s = 1000t: meet at t=2.
	a := NewTokenBucket(500, 1000)
	s := NewRateLatency(1000, 0)
	if got, want := BusyPeriod(a, s), 2.0; !almostEq(got, want) {
		t.Errorf("BusyPeriod = %v, want %v", got, want)
	}
}

func TestBusyPeriodNeverMeets(t *testing.T) {
	a := NewTokenBucket(1000, 10)
	s := NewRateLatency(1000, 0) // equal rates, arrival stays above by 10 B
	if got := BusyPeriod(a, s); !math.IsInf(got, 1) {
		t.Errorf("BusyPeriod = %v, want +Inf", got)
	}
}

func TestQueueBoundPaperExample(t *testing.T) {
	// Paper §4.2.1: a 10 Gbps port with a 100 KB buffer has an 80 µs
	// queue capacity. Verify the same arithmetic with curves: a source
	// bursting 100 KB at line rate into a 10 Gbps server is delayed at
	// most 100KB/10Gbps = 80 µs.
	const gbps = 1e9 / 8 // bytes/sec
	a := NewTokenBucket(0, 100e3)
	s := NewRateLatency(10*gbps, 0)
	if got, want := QueueBound(a, s), 80e-6; !almostEq(got, want) {
		t.Errorf("QueueBound = %v, want %v", got, want)
	}
}

// Property: queue bound is monotone in burst and antitone in service
// rate.
func TestQueueBoundMonotonicityProperty(t *testing.T) {
	f := func(rate, burst, extra uint16, c uint16) bool {
		r := float64(rate) + 1
		b := float64(burst)
		cap1 := r + float64(c) + 1 // service faster than arrival
		a1 := NewTokenBucket(r, b)
		a2 := NewTokenBucket(r, b+float64(extra))
		s := NewRateLatency(cap1, 0)
		q1 := QueueBound(a1, s)
		q2 := QueueBound(a2, s)
		if q2+1e-9 < q1 {
			return false
		}
		s2 := NewRateLatency(cap1*2, 0)
		q3 := QueueBound(a1, s2)
		return q3 <= q1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: hose aggregate is pointwise <= plain aggregate (Silo's
// tightening never loosens the bound), hence its queue bound is <= too.
func TestHoseTighterProperty(t *testing.T) {
	f := func(mRaw, nRaw uint8, rate, burst uint16) bool {
		n := int(nRaw%62) + 2
		m := int(mRaw)%(n-1) + 1 // 1..n-1
		r := float64(rate) + 1
		b := float64(burst) + 1
		peak := 4 * r
		hose := HoseAggregate(m, n, r, b, peak, 0)
		plain := PlainAggregate(m, r, b, peak, 0)
		for _, x := range []float64{0, 0.1, 1, 10, 100} {
			if hose.Eval(x) > plain.Eval(x)+1e-6 {
				return false
			}
		}
		srv := NewRateLatency(float64(n)*r*4+1, 0)
		return QueueBound(hose, srv) <= QueueBound(plain, srv)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHoseAggregateShape(t *testing.T) {
	// Tenant of 9 VMs, 3 on the left: crossing bandwidth is
	// min(3,6)*B = 3B; burst is 3S regardless.
	c := HoseAggregate(3, 9, 100, 10, 0, 0)
	if got := c.LongTermRate(); !almostEq(got, 300) {
		t.Errorf("rate = %v, want 300", got)
	}
	if got := c.BurstAt0(); !almostEq(got, 30) {
		t.Errorf("burst = %v, want 30", got)
	}
	// 6 on the left: bandwidth still min(6,3)*B = 3B, burst 6S.
	c = HoseAggregate(6, 9, 100, 10, 0, 0)
	if got := c.LongTermRate(); !almostEq(got, 300) {
		t.Errorf("rate = %v, want 300", got)
	}
	if got := c.BurstAt0(); !almostEq(got, 60) {
		t.Errorf("burst = %v, want 60", got)
	}
}

func TestHoseAggregateDegenerate(t *testing.T) {
	if c := HoseAggregate(0, 5, 1, 1, 0, 0); !c.Zero() {
		t.Error("m=0 should yield zero curve")
	}
	// All VMs on one side: no sustained crossing bandwidth.
	c := HoseAggregate(5, 5, 100, 10, 0, 0)
	if got := c.LongTermRate(); got != 0 {
		t.Errorf("rate = %v, want 0", got)
	}
}

func TestPropagate(t *testing.T) {
	// A_{B,S} through a port with queue capacity c: egress burst B·c+S
	// (paper: "the egress traffic's arrival curve is A_{B,(B.c+S)}").
	in := NewTokenBucket(1000, 500)
	out := Propagate(in, 0.1, 0, 0)
	if got := out.LongTermRate(); !almostEq(got, 1000) {
		t.Errorf("rate = %v, want 1000", got)
	}
	if got, want := out.BurstAt0(), 1000*0.1+500; !almostEq(got, want) {
		t.Errorf("burst = %v, want %v", got, want)
	}
}

func TestPropagateLineRateCap(t *testing.T) {
	in := NewTokenBucket(1000, 500)
	out := Propagate(in, 0.1, 10000, 100)
	// At t=0 only the MTU seed is instantaneous.
	if got := out.Eval(0); got > 600+1e-6 {
		t.Errorf("instantaneous egress = %v, too large", got)
	}
	// Long-term rate unchanged.
	if got := out.LongTermRate(); !almostEq(got, 1000) {
		t.Errorf("rate = %v, want 1000", got)
	}
}

// Property: propagation never reduces a curve (bunching only worsens
// burstiness) and never changes the sustained rate.
func TestPropagateInflatesProperty(t *testing.T) {
	f := func(rate, burst uint16, cap8 uint8) bool {
		r := float64(rate) + 1
		b := float64(burst)
		c := float64(cap8) / 100
		in := NewTokenBucket(r, b)
		out := Propagate(in, c, 0, 0)
		if !almostEq(out.LongTermRate(), r) {
			return false
		}
		for _, x := range []float64{0, 0.5, 2, 20} {
			if out.Eval(x)+1e-6 < in.Eval(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWFQServiceCurve(t *testing.T) {
	// A flow with a 30% share of a 10 Gbps link, 1500 B max packets:
	// β_{0.3·C, 1500/C}.
	const c = 1.25e9
	s := NewWFQService(c, 0.3, 1500)
	if got := s.LongTermRate(); !almostEq(got, 0.3*c) {
		t.Errorf("rate = %v", got)
	}
	if got := s.Eval(1500 / c); !almostEq(got, 0) {
		t.Errorf("latency not honored: %v", got)
	}
	// Shares clamp to [0, 1].
	if got := NewWFQService(c, 2, 1500).LongTermRate(); !almostEq(got, c) {
		t.Errorf("overshare rate = %v", got)
	}
	if got := NewWFQService(c, -1, 1500).LongTermRate(); got != 0 {
		t.Errorf("negative share rate = %v", got)
	}
	// The paper's motivation for WFQ bounds (Parekh-Gallagher): a
	// flow's delay bound under WFQ is independent of other flows'
	// bursts. Compare against FIFO where the aggregate burst matters.
	flow := NewTokenBucket(0.2*c, 10e3)
	cross := NewTokenBucket(0.5*c, 500e3) // bursty competitor
	fifo := QueueBound(Add(flow, cross), NewRateLatency(c, 0))
	wfq := QueueBound(flow, NewWFQService(c, 0.2, 1500))
	if wfq >= fifo {
		t.Errorf("WFQ bound %v should beat FIFO-with-competitor %v", wfq, fifo)
	}
}

func TestFigure7BurstDoubling(t *testing.T) {
	// Paper Fig. 7: f1 (rate C/2, burst 1 pkt) shares a C-capacity port
	// with f2 (rate C/4, burst 1 pkt); f1 can egress with its burst
	// doubled. Our conservative Propagate must dominate that outcome.
	const C = 1000.0 // bytes/sec
	const pkt = 1.0
	f1 := NewTokenBucket(C/2, pkt)
	f2 := NewTokenBucket(C/4, pkt)
	srv := NewRateLatency(C, 0)
	p := BusyPeriod(Add(f1, f2), srv)
	// Egress burst per Kurose: traffic f1 can inject within p.
	egressBurst := f1.Eval(p)
	if egressBurst < 2*pkt-1e-9 {
		t.Errorf("egress burst %v should be at least doubled (2)", egressBurst)
	}
	// Propagate with c = queue capacity >= p must be at least as big.
	out := Propagate(f1, p, 0, 0)
	if out.BurstAt0()+1e-9 < egressBurst {
		t.Errorf("Propagate burst %v < Kurose bound %v", out.BurstAt0(), egressBurst)
	}
}
