package netcal

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d < 1e-6 || d < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestTokenBucketEval(t *testing.T) {
	c := NewTokenBucket(100, 50) // 100 B/s, 50 B burst
	cases := []struct{ t, want float64 }{
		{-1, 0},
		{0, 50},
		{1, 150},
		{2.5, 300},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("Eval(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if got := c.LongTermRate(); got != 100 {
		t.Errorf("LongTermRate = %v, want 100", got)
	}
	if got := c.BurstAt0(); got != 50 {
		t.Errorf("BurstAt0 = %v, want 50", got)
	}
}

func TestRateCappedEval(t *testing.T) {
	// rate 100 B/s, burst 1000 B, peak 1000 B/s, seed 100 B.
	// Crossover at t = (1000-100)/(1000-100) = 1 s.
	c := NewRateCapped(100, 1000, 1000, 100)
	cases := []struct{ t, want float64 }{
		{0, 100},
		{0.5, 600},
		{1, 1100},
		{2, 1200},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("Eval(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestRateCappedDegenerate(t *testing.T) {
	// Peak below rate collapses to the plain token bucket.
	c := NewRateCapped(100, 50, 80, 10)
	if got := c.Eval(1); !almostEq(got, 150) {
		t.Errorf("Eval(1) = %v, want 150", got)
	}
	// Seed above burst likewise.
	c = NewRateCapped(100, 50, 1000, 60)
	if got := c.Eval(0); !almostEq(got, 50) {
		t.Errorf("Eval(0) = %v, want 50", got)
	}
}

func TestRateLatency(t *testing.T) {
	s := NewRateLatency(1000, 0.5)
	cases := []struct{ t, want float64 }{
		{0, 0},
		{0.5, 0},
		{1, 500},
		{1.5, 1000},
	}
	for _, tc := range cases {
		if got := s.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("Eval(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestAdd(t *testing.T) {
	a := NewTokenBucket(100, 50)
	b := NewTokenBucket(200, 25)
	sum := Add(a, b)
	for _, x := range []float64{0, 0.1, 1, 3, 10} {
		if got, want := sum.Eval(x), a.Eval(x)+b.Eval(x); !almostEq(got, want) {
			t.Errorf("sum.Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestAddWithZero(t *testing.T) {
	a := NewTokenBucket(100, 50)
	if got := Add(a, Curve{}); !almostEq(got.Eval(2), a.Eval(2)) {
		t.Errorf("Add with zero changed curve: %v", got)
	}
	if got := Add(Curve{}, a); !almostEq(got.Eval(2), a.Eval(2)) {
		t.Errorf("Add with zero changed curve: %v", got)
	}
}

func TestSum(t *testing.T) {
	curves := []Curve{
		NewTokenBucket(10, 1),
		NewTokenBucket(20, 2),
		NewTokenBucket(30, 3),
	}
	total := Sum(curves...)
	if got := total.Eval(1); !almostEq(got, 66) {
		t.Errorf("Sum.Eval(1) = %v, want 66", got)
	}
}

func TestMin(t *testing.T) {
	a := NewTokenBucket(100, 1000) // slow with big burst
	b := NewTokenBucket(1000, 10)  // fast with small burst
	m := Min(a, b)
	for _, x := range []float64{0, 0.5, 1.0, 1.1, 2, 5} {
		want := math.Min(a.Eval(x), b.Eval(x))
		if got := m.Eval(x); !almostEq(got, want) {
			t.Errorf("Min.Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMinEqualsRateCapped(t *testing.T) {
	// NewRateCapped must agree with the explicit Min construction.
	rc := NewRateCapped(100, 1000, 1000, 100)
	mn := Min(NewTokenBucket(100, 1000), NewTokenBucket(1000, 100))
	for _, x := range []float64{0, 0.3, 1, 1.5, 4} {
		if !almostEq(rc.Eval(x), mn.Eval(x)) {
			t.Errorf("at t=%v: RateCapped=%v Min=%v", x, rc.Eval(x), mn.Eval(x))
		}
	}
}

func TestScale(t *testing.T) {
	a := NewTokenBucket(100, 50)
	s := Scale(a, 3)
	if got := s.Eval(2); !almostEq(got, 3*a.Eval(2)) {
		t.Errorf("Scale.Eval(2) = %v, want %v", got, 3*a.Eval(2))
	}
}

func TestString(t *testing.T) {
	if got := (Curve{}).String(); got != "Curve{0}" {
		t.Errorf("zero curve String = %q", got)
	}
	if got := NewTokenBucket(1, 2).String(); got == "" {
		t.Error("empty String for token bucket")
	}
}

// Property: curves from our constructors are nondecreasing and concave,
// and Add/Min preserve both.
func TestCurveConcavityProperty(t *testing.T) {
	f := func(r1, b1, r2, b2, p uint16) bool {
		a := NewRateCapped(float64(r1), float64(b1)+1, float64(p)+float64(r1)+1, 1)
		b := NewTokenBucket(float64(r2), float64(b2))
		for _, c := range []Curve{a, b, Add(a, b), Min(a, b)} {
			if !isConcaveNondecreasing(c) {
				t.Logf("violator: %v", c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func isConcaveNondecreasing(c Curve) bool {
	segs := c.Segments()
	prevRate := math.Inf(1)
	prevEnd := 0.0
	for i, s := range segs {
		if s.Rate < 0 {
			return false
		}
		if s.Rate > prevRate+1e-9 {
			return false // rates must not increase: concavity
		}
		if i > 0 && s.Y+1e-6 < prevEnd {
			return false // value must not drop at a breakpoint
		}
		prevRate = s.Rate
		end := s.Y
		if i+1 < len(segs) {
			end = s.Y + s.Rate*(segs[i+1].X-s.X)
		}
		prevEnd = end
	}
	return true
}

// Property: Add is commutative and associative (pointwise).
func TestAddCommutativeProperty(t *testing.T) {
	f := func(r1, b1, r2, b2 uint16, x uint8) bool {
		a := NewTokenBucket(float64(r1), float64(b1))
		b := NewTokenBucket(float64(r2), float64(b2))
		tt := float64(x) / 16
		return almostEq(Add(a, b).Eval(tt), Add(b, a).Eval(tt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
