package netcal

import (
	"math"
	"math/rand"
	"testing"
)

// boundsAgree compares a closed-form bound against the generic
// breakpoint-enumeration QueueBound, treating matching infinities as
// agreement.
func boundsAgree(got, want float64) bool {
	if math.IsInf(want, 1) || math.IsInf(got, 1) {
		return math.IsInf(want, 1) && math.IsInf(got, 1)
	}
	return math.Abs(got-want) <= 1e-12*math.Max(1, math.Abs(want))
}

func TestQueueBoundTBMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	svc := func() float64 { return math.Pow(10, 6+rng.Float64()*4) }
	for i := 0; i < 5000; i++ {
		rate := math.Pow(10, 5+rng.Float64()*5)
		burst := rng.Float64() * 1e6
		R := svc()
		want := QueueBound(NewTokenBucket(rate, burst), NewRateLatency(R, 0))
		got := QueueBoundTB(rate, burst, R)
		if !boundsAgree(got, want) {
			t.Fatalf("tb(rate=%v burst=%v R=%v): closed %v generic %v", rate, burst, R, got, want)
		}
	}
	// Exact boundary: long-term rate equal to service rate is finite.
	if got := QueueBoundTB(1e9, 5e5, 1e9); math.IsInf(got, 1) {
		t.Fatalf("rate == svcRate must be finite, got %v", got)
	}
	if got := QueueBoundTB(1e9+1, 5e5, 1e9); !math.IsInf(got, 1) {
		t.Fatalf("rate > svcRate must be +Inf, got %v", got)
	}
	if got := QueueBoundTB(0, 0, 1e9); got != 0 {
		t.Fatalf("zero curve must bound to 0, got %v", got)
	}
}

func TestQueueBoundTwoPieceMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		rate := math.Pow(10, 5+rng.Float64()*5)
		burst := rng.Float64() * 1e6
		peak := rate * (0.5 + rng.Float64()*20) // sometimes <= rate (degenerate)
		seed := rng.Float64() * burst * 1.5     // sometimes >= burst (degenerate)
		R := math.Pow(10, 6+rng.Float64()*4)
		want := QueueBound(NewRateCapped(rate, burst, peak, seed), NewRateLatency(R, 0))
		got := QueueBoundTwoPiece(rate, burst, peak, seed, R)
		if !boundsAgree(got, want) {
			t.Fatalf("twopiece(rate=%v burst=%v peak=%v seed=%v R=%v): closed %v generic %v",
				rate, burst, peak, seed, R, got, want)
		}
	}
}

func TestQueueBoundTwoPieceDegenerateFallsToTokenBucket(t *testing.T) {
	// peak <= rate and burst <= seed both collapse the two-piece curve
	// to a plain token bucket, mirroring NewRateCapped.
	cases := []struct{ rate, burst, peak, seed float64 }{
		{1e8, 3e4, 5e7, 1e3}, // peak < rate
		{1e8, 3e4, 1e8, 1e3}, // peak == rate
		{1e8, 3e4, 1e9, 3e4}, // seed == burst
		{1e8, 3e4, 1e9, 5e4}, // seed > burst
		{1e8, 0, 1e9, 0},     // zero burst
	}
	for _, c := range cases {
		want := QueueBoundTB(c.rate, c.burst, 1e9)
		got := QueueBoundTwoPiece(c.rate, c.burst, c.peak, c.seed, 1e9)
		if !boundsAgree(got, want) {
			t.Fatalf("degenerate %+v: got %v want %v", c, got, want)
		}
	}
}

func TestQueueBoundGenericFastPathSingleSegmentService(t *testing.T) {
	// The generic QueueBound takes an allocation-free path for pure
	// rate services; it must agree with the breakpoint path taken by
	// a latency-shifted service curve with latency 0 approached via a
	// two-segment encoding.
	a := NewRateCapped(2e8, 6e4, 2e9, 3e3)
	s1 := NewRateLatency(1e9, 0)
	got := QueueBound(a, s1)
	want := 0.0
	// Hand-computed horizontal deviation for this arrival at R=1e9:
	// knee at tx=(6e4-3e3)/(2e9-2e8)=3.1667e-5, y=3e3+2e9*tx=6.633e4;
	// bound = max(seed/R, y/R - tx).
	tx := (6e4 - 3e3) / (2e9 - 2e8)
	y := 3e3 + 2e9*tx
	want = math.Max(3e3/1e9, y/1e9-tx)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestArenaCurvesMatchConstructors(t *testing.T) {
	var ar Arena
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		rate := rng.Float64() * 1e9
		burst := rng.Float64() * 1e5
		peak := rng.Float64() * 5e9
		seed := rng.Float64() * 1e5

		tb := ar.TokenBucket(rate, burst)
		tbWant := NewTokenBucket(rate, burst)
		rc := ar.RateCapped(rate, burst, peak, seed)
		rcWant := NewRateCapped(rate, burst, peak, seed)

		for _, tt := range []float64{0, 1e-6, 1e-4, 1e-2, 1} {
			if got, want := tb.Eval(tt), tbWant.Eval(tt); got != want {
				t.Fatalf("arena token bucket differs at t=%v: %v vs %v", tt, got, want)
			}
			if got, want := rc.Eval(tt), rcWant.Eval(tt); got != want {
				t.Fatalf("arena rate-capped differs at t=%v: %v vs %v", tt, got, want)
			}
		}
	}
}

func TestArenaGrowthPreservesEarlierCurves(t *testing.T) {
	var ar Arena
	first := ar.TokenBucket(1e8, 4e4)
	// Force repeated growth; earlier curves must keep their values even
	// though the arena reallocates its backing buffer.
	for i := 0; i < 10000; i++ {
		ar.RateCapped(1e8, 4e4, 1e9, 1.5e3)
	}
	if got, want := first.Eval(1e-3), NewTokenBucket(1e8, 4e4).Eval(1e-3); got != want {
		t.Fatalf("curve corrupted by arena growth: %v vs %v", got, want)
	}
}

func TestArenaReset(t *testing.T) {
	var ar Arena
	for i := 0; i < 64; i++ {
		ar.RateCapped(1e8, 4e4, 1e9, 1.5e3)
	}
	ar.Reset()
	c := ar.TokenBucket(2e8, 8e4)
	if got, want := c.Eval(1e-3), NewTokenBucket(2e8, 8e4).Eval(1e-3); got != want {
		t.Fatalf("post-reset curve wrong: %v vs %v", got, want)
	}
	// Reset must reuse the buffer, not allocate fresh segments.
	allocs := testing.AllocsPerRun(100, func() {
		ar.Reset()
		ar.TokenBucket(1e8, 4e4)
		ar.RateCapped(1e8, 4e4, 1e9, 1.5e3)
	})
	if allocs != 0 {
		t.Fatalf("arena reuse allocated %v times per run", allocs)
	}
}

func TestArenaRejectsNegativeParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative rate")
		}
	}()
	var ar Arena
	ar.TokenBucket(-1, 0)
}
