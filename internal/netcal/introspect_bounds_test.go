package netcal

import (
	"math"
	"math/rand"
	"testing"
)

func TestBacklogTBMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		rate := math.Pow(10, 5+rng.Float64()*5)
		burst := rng.Float64() * 1e6
		R := math.Pow(10, 6+rng.Float64()*4)
		want := Backlog(NewTokenBucket(rate, burst), NewRateLatency(R, 0))
		got := BacklogTB(rate, burst, R)
		if !boundsAgree(got, want) {
			t.Fatalf("tb(rate=%v burst=%v R=%v): closed %v generic %v", rate, burst, R, got, want)
		}
	}
	if got := BacklogTB(0, 0, 1e9); got != 0 {
		t.Fatalf("zero curve must have 0 backlog, got %v", got)
	}
	if got := BacklogTB(1e9+1, 5e5, 1e9); !math.IsInf(got, 1) {
		t.Fatalf("rate > svcRate must be +Inf, got %v", got)
	}
	if got := BacklogTB(1e8, -4, 1e9); got != 0 {
		t.Fatalf("negative burst residue must clamp to 0, got %v", got)
	}
}

func TestBacklogTwoPieceMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 5000; i++ {
		rate := math.Pow(10, 5+rng.Float64()*5)
		burst := rng.Float64() * 1e6
		peak := rate * (0.5 + rng.Float64()*20) // sometimes <= rate (degenerate)
		seed := rng.Float64() * burst * 1.5     // sometimes >= burst (degenerate)
		R := math.Pow(10, 6+rng.Float64()*4)
		want := Backlog(NewRateCapped(rate, burst, peak, seed), NewRateLatency(R, 0))
		got := BacklogTwoPiece(rate, burst, peak, seed, R)
		if !boundsAgree(got, want) {
			t.Fatalf("twopiece(rate=%v burst=%v peak=%v seed=%v R=%v): closed %v generic %v",
				rate, burst, peak, seed, R, got, want)
		}
	}
}

func TestBusyPeriodTBMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		rate := math.Pow(10, 5+rng.Float64()*5)
		burst := rng.Float64() * 1e6
		R := math.Pow(10, 6+rng.Float64()*4)
		want := BusyPeriod(NewTokenBucket(rate, burst), NewRateLatency(R, 0))
		got := BusyPeriodTB(rate, burst, R)
		if !boundsAgree(got, want) {
			t.Fatalf("tb(rate=%v burst=%v R=%v): closed %v generic %v", rate, burst, R, got, want)
		}
	}
	// Edge semantics pinned to the generic scan.
	if got := BusyPeriodTB(0, 0, 1e9); got != 0 {
		t.Fatalf("zero curve busy period must be 0, got %v", got)
	}
	if got, want := BusyPeriodTB(1e8, 0, 1e9), BusyPeriod(NewTokenBucket(1e8, 0), NewRateLatency(1e9, 0)); !boundsAgree(got, want) {
		t.Fatalf("zero-burst edge: closed %v generic %v", got, want)
	}
	if got := BusyPeriodTB(1e9, 5e5, 1e9); !math.IsInf(got, 1) {
		t.Fatalf("rate == svcRate never meets, want +Inf got %v", got)
	}
}

func TestBusyPeriodTwoPieceMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 5000; i++ {
		rate := math.Pow(10, 5+rng.Float64()*5)
		burst := rng.Float64() * 1e6
		peak := rate * (0.5 + rng.Float64()*20)
		seed := rng.Float64() * burst * 1.5
		// Span service rates below rate, between rate and peak, and
		// above peak so every closed-form branch is exercised.
		R := math.Pow(10, 4+rng.Float64()*7)
		want := BusyPeriod(NewRateCapped(rate, burst, peak, seed), NewRateLatency(R, 0))
		got := BusyPeriodTwoPiece(rate, burst, peak, seed, R)
		if !boundsAgree(got, want) {
			t.Fatalf("twopiece(rate=%v burst=%v peak=%v seed=%v R=%v): closed %v generic %v",
				rate, burst, peak, seed, R, got, want)
		}
	}
	// Service line grazing the knee exactly: svc·tx == yx returns tx.
	rate, burst, peak, seed := 1e8, 1e6, 1e9, 0.0
	// With seed == 0, tx = burst/(peak-rate), yx = peak·tx; pick svc
	// above peak so the knee is the first nonnegative crossing.
	if got, want := BusyPeriodTwoPiece(rate, burst, peak, seed, 2e9),
		BusyPeriod(NewRateCapped(rate, burst, peak, seed), NewRateLatency(2e9, 0)); !boundsAgree(got, want) {
		t.Fatalf("zero-seed knee: closed %v generic %v", got, want)
	}
}

func TestIntrospectBoundsAllocFree(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		_ = BacklogTB(1e8, 5e5, 1e9)
		_ = BacklogTwoPiece(1e8, 5e5, 1e9, 1500, 1e9)
		_ = BusyPeriodTB(1e8, 5e5, 1e9)
		_ = BusyPeriodTwoPiece(1e8, 5e5, 1e9, 1500, 1e9)
	}); n != 0 {
		t.Fatalf("closed-form bounds allocated %v/op, want 0", n)
	}
}
