package netcal

import "math"

// This file implements min-plus convolution of service curves — the
// network-calculus tool for composing hops into an end-to-end service
// curve. Silo's placement deliberately does NOT use it (per-hop queue
// capacities compose under churn, §4.2.3), but the library provides it
// for analysis and for the ablation comparing Silo's additive per-hop
// delay budget against the tighter end-to-end bound ("pay bursts only
// once").

// Convolve returns the min-plus convolution (f ⊗ g)(t) = inf_{0<=s<=t}
// f(s) + g(t−s) for concave/convex piecewise-linear curves as used
// here. For the rate-latency service curves β_{R,T} this reduces to
// β_{min(R1,R2), T1+T2}; the general implementation below handles any
// pair of curves built by this package by merging their segment rates
// in increasing-rate order (the standard result for convex functions;
// for the convex service curves used here it is exact).
func Convolve(f, g Curve) Curve {
	if len(f.segs) == 0 {
		return g
	}
	if len(g.segs) == 0 {
		return f
	}
	// Latency (horizontal offset before the curve leaves zero) adds.
	lf, vf := latencyOf(f)
	lg, vg := latencyOf(g)
	// Collect the linear pieces (rate, length) past the latency of
	// each curve and merge them by increasing rate: the convolution of
	// convex curves concatenates their pieces sorted by slope.
	pieces := append(piecesOf(f), piecesOf(g)...)
	sortPieces(pieces)

	segs := []Segment{}
	t := lf + lg
	y := vf + vg
	if t > 0 {
		segs = append(segs, Segment{X: 0, Y: 0, Rate: 0})
	}
	for _, p := range pieces {
		segs = append(segs, Segment{X: t, Y: y, Rate: p.rate})
		if math.IsInf(p.length, 1) {
			t = math.Inf(1)
			break
		}
		t += p.length
		y += p.rate * p.length
	}
	if len(segs) == 0 {
		segs = append(segs, Segment{X: 0, Y: y, Rate: 0})
	}
	return Curve{segs: normalize(segs)}
}

// latencyOf returns the largest T with c(T) == c(0) (the service
// latency) and the value there.
func latencyOf(c Curve) (float64, float64) {
	if len(c.segs) == 0 {
		return 0, 0
	}
	v0 := c.Eval(0)
	t := 0.0
	for i, s := range c.segs {
		if s.Rate > 0 {
			return s.X, v0
		}
		if i+1 < len(c.segs) {
			t = c.segs[i+1].X
		}
	}
	return t, v0
}

type piece struct {
	rate   float64
	length float64 // seconds; +Inf for the final piece
}

// piecesOf lists the positive-rate linear pieces of a curve in order.
func piecesOf(c Curve) []piece {
	var out []piece
	for i, s := range c.segs {
		if s.Rate <= 0 {
			continue
		}
		length := math.Inf(1)
		if i+1 < len(c.segs) {
			length = c.segs[i+1].X - s.X
		}
		out = append(out, piece{rate: s.Rate, length: length})
	}
	return out
}

func sortPieces(ps []piece) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].rate < ps[j-1].rate; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// EndToEndDelayBound returns the worst-case delay for arrival curve a
// through the given per-hop service curves, using the convolved
// end-to-end service curve ("pay bursts only once"). It is never
// larger than the sum of per-hop bounds Silo's placement budget uses.
func EndToEndDelayBound(a Curve, hops ...Curve) float64 {
	if len(hops) == 0 {
		return 0
	}
	e2e := hops[0]
	for _, h := range hops[1:] {
		e2e = Convolve(e2e, h)
	}
	return QueueBound(a, e2e)
}

// PerHopDelayBoundSum returns the additive per-hop delay bound: at
// each hop the arrival curve is propagated (burst inflated by the
// hop's busy period) and the hop's queue bound added. This is the
// composable budget Silo's placement reasons with.
func PerHopDelayBoundSum(a Curve, hops ...Curve) float64 {
	total := 0.0
	cur := a
	for _, h := range hops {
		b := QueueBound(cur, h)
		if math.IsInf(b, 1) {
			return b
		}
		total += b
		p := BusyPeriod(cur, h)
		if math.IsInf(p, 1) {
			return math.Inf(1)
		}
		cur = Propagate(cur, p, 0, 0)
	}
	return total
}
