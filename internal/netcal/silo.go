package netcal

// This file holds the Silo-specific curve constructions of paper
// §4.2.2: hose-model aggregation of same-tenant sources and
// propagation of an arrival curve through a switch port.

// HoseAggregate returns the arrival curve for the traffic of m VMs of
// an N-VM tenant crossing a link in one direction, where each VM is
// individually bounded by A_{rate, burst} and bursts at up to peak.
//
// The hose model destination-limits bandwidth: the tenant's total
// sustained rate across the cut is min(m, N−m)·rate, because the
// receiving side has only N−m sinks each accepting at most `rate`.
// Bursts, by contrast, are NOT destination limited (§4.1: all N VMs
// may burst simultaneously to one destination — the OLDI
// partition/aggregate pattern), so the aggregate burst is m·burst and
// the aggregate peak is m·peak.
//
// mtu seeds the instantaneous wire burst per VM (one packet in flight
// back-to-back); pass 0 to model ideal fluid sources.
func HoseAggregate(m, n int, rate, burst, peak, mtu float64) Curve {
	if m <= 0 || n <= 0 {
		return Curve{}
	}
	other := n - m
	if other < 0 {
		other = 0
	}
	sustained := rate * float64(minInt(m, other))
	if other == 0 {
		// Degenerate cut: all VMs on one side. No intra-tenant traffic
		// crosses, but callers normally avoid this.
		sustained = 0
	}
	totalBurst := burst * float64(m)
	totalPeak := peak * float64(m)
	seed := mtu * float64(m)
	if totalPeak <= 0 {
		return NewTokenBucket(sustained, totalBurst)
	}
	return NewRateCapped(sustained, totalBurst, totalPeak, seed)
}

// PlainAggregate is the non-hose sum m·A_{rate,burst}: both rate and
// burst scale with m. It exists for the ablation benchmark comparing
// Silo's tightened curve against naive addition.
func PlainAggregate(m int, rate, burst, peak, mtu float64) Curve {
	if m <= 0 {
		return Curve{}
	}
	if peak <= 0 {
		return NewTokenBucket(rate*float64(m), burst*float64(m))
	}
	return NewRateCapped(rate*float64(m), burst*float64(m), peak*float64(m), mtu*float64(m))
}

// Propagate returns the arrival curve of traffic after it egresses a
// switch port with queue capacity c seconds (paper §4.2.2,
// "Propagating arrival curves"). A port can bunch every byte that
// arrives within the interval over which its queue empties; Silo uses
// the port's queue capacity as a competing-traffic-independent bound on
// that interval. An ingress A_{B,S} therefore egresses as
// A_{B, B·c+S}: the sustained rate is unchanged, the burst inflates by
// B·c.
//
// The egress peak rate is the port's line rate: a queue drains
// back-to-back at wire speed. linerate <= 0 leaves the curve uncapped.
func Propagate(in Curve, c, linerate, mtu float64) Curve {
	rate := in.LongTermRate()
	burst := in.Eval(c) // bytes that can arrive within [0, c] — B·c + S for a token bucket
	if linerate <= 0 {
		return NewTokenBucket(rate, burst)
	}
	return NewRateCapped(rate, burst, linerate, mtu)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
