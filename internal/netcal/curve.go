// Package netcal implements the fragment of network calculus Silo's
// placement manager relies on (paper §4.2.2, after Cruz and Kurose).
//
// Traffic sources are described by concave, piecewise-linear arrival
// curves A(t): an upper bound on the bytes a source may emit in any
// interval of length t. Switch ports are described by service curves.
// The maximum horizontal deviation between an arrival curve and a
// service curve is the port's queue bound — the worst-case queuing
// delay — and the maximum vertical deviation is the worst-case backlog.
//
// Silo uses three curve constructions:
//
//   - the token-bucket curve A_{B,S}(t) = B·t + S, optionally capped by
//     a peak rate Bmax: A'(t) = min(Bmax·t + MTU, B·t + S);
//   - hose-model aggregation of m same-tenant curves crossing a link:
//     A_{min(m,N−m)·B, m·S} (bandwidth is destination-limited, bursts
//     are not);
//   - propagation through a port of queue capacity c: an A_{B,S} input
//     egresses as A_{B, B·c+S} (Kurose's bound, loosened to be
//     independent of competing traffic).
//
// All rates are bytes/second and times are seconds, so curves evaluate
// to bytes. Curves are immutable once built.
package netcal

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Segment is one linear piece of a curve: starting at time X the curve
// has value Y and slope Rate until the next segment's X.
type Segment struct {
	X    float64 // start time (seconds)
	Y    float64 // value at X (bytes)
	Rate float64 // slope (bytes/second)
}

// Curve is a nondecreasing piecewise-linear function of time. Arrival
// curves built by this package are additionally concave (their segment
// rates are nonincreasing), which Add, Hose and Propagate preserve.
// The zero value is the zero function.
type Curve struct {
	segs []Segment
}

// NewTokenBucket returns the arrival curve A(t) = rate·t + burst
// (the paper's A_{B,S}). rate and burst must be nonnegative.
func NewTokenBucket(rate, burst float64) Curve {
	if rate < 0 || burst < 0 {
		panic("netcal: negative rate or burst")
	}
	return Curve{segs: []Segment{{X: 0, Y: burst, Rate: rate}}}
}

// NewRateCapped returns the two-piece curve the implementation uses
// (the paper's A′, Figure 6a): traffic is bounded both by the token
// bucket {rate, burst} and by the peak rate cap:
//
//	A′(t) = min(peak·t + seed, rate·t + burst)
//
// seed is the instantaneous burst at the peak rate — one MTU for a
// single VM (a packet is released back-to-back at wire speed). If
// peak <= rate the plain token bucket is returned.
func NewRateCapped(rate, burst, peak, seed float64) Curve {
	if peak <= rate || burst <= seed {
		return NewTokenBucket(rate, burst)
	}
	// Intersection of peak·t + seed and rate·t + burst.
	tx := (burst - seed) / (peak - rate)
	return Curve{segs: []Segment{
		{X: 0, Y: seed, Rate: peak},
		{X: tx, Y: seed + peak*tx, Rate: rate},
	}}
}

// NewWFQService returns the Parekh-Gallagher service curve a flow
// with the given weight share receives from a weighted-fair-queuing
// scheduler (paper refs [29,30]): a rate-latency curve with
// R = share·linkRate and T = maxPkt/linkRate (one maximum-size packet
// of scheduling latency). Silo deliberately assumes plain FIFO
// switches — this curve exists for comparing how much tighter
// per-flow bounds would be with WFQ hardware.
func NewWFQService(linkRate, share, maxPktBytes float64) Curve {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	latency := 0.0
	if linkRate > 0 {
		latency = maxPktBytes / linkRate
	}
	return NewRateLatency(share*linkRate, latency)
}

// NewRateLatency returns the service curve β(t) = max(0, rate·(t −
// latency)), the standard model of a switch output port that serves at
// `rate` after a scheduling latency.
func NewRateLatency(rate, latency float64) Curve {
	if latency <= 0 {
		return Curve{segs: []Segment{{X: 0, Y: 0, Rate: rate}}}
	}
	return Curve{segs: []Segment{
		{X: 0, Y: 0, Rate: 0},
		{X: latency, Y: 0, Rate: rate},
	}}
}

// Arena is a bump allocator for Segment slices, amortizing the cost of
// building many short-lived curves (e.g. re-materializing every
// admitted tenant's contribution during an invariant sweep). Curves
// built from an arena alias its backing storage and remain valid until
// the next Reset; the arena is not safe for concurrent use.
type Arena struct {
	buf []Segment
}

// Reset discards all curves built from the arena, retaining capacity.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// take returns n fresh segments backed by the arena.
func (a *Arena) take(n int) []Segment {
	if cap(a.buf)-len(a.buf) < n {
		grown := make([]Segment, len(a.buf), 2*cap(a.buf)+n+16)
		copy(grown, a.buf)
		// Previously built curves keep referencing the old backing
		// array, which stays alive and immutable until they are dropped.
		a.buf = grown
	}
	s := a.buf[len(a.buf) : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

// TokenBucket is NewTokenBucket backed by the arena.
func (a *Arena) TokenBucket(rate, burst float64) Curve {
	if rate < 0 || burst < 0 {
		panic("netcal: negative rate or burst")
	}
	segs := a.take(1)
	segs[0] = Segment{X: 0, Y: burst, Rate: rate}
	return Curve{segs: segs}
}

// RateCapped is NewRateCapped backed by the arena.
func (a *Arena) RateCapped(rate, burst, peak, seed float64) Curve {
	if peak <= rate || burst <= seed {
		return a.TokenBucket(rate, burst)
	}
	tx := (burst - seed) / (peak - rate)
	segs := a.take(2)
	segs[0] = Segment{X: 0, Y: seed, Rate: peak}
	segs[1] = Segment{X: tx, Y: seed + peak*tx, Rate: rate}
	return Curve{segs: segs}
}

// Zero reports whether the curve is identically zero.
func (c Curve) Zero() bool {
	for _, s := range c.segs {
		if s.Y != 0 || s.Rate != 0 {
			return false
		}
	}
	return true
}

// Eval returns the curve's value at time t (t < 0 evaluates to 0, per
// the network-calculus convention that curves vanish on negatives).
func (c Curve) Eval(t float64) float64 {
	if t < 0 || len(c.segs) == 0 {
		return 0
	}
	// Find the last segment with X <= t.
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].X > t }) - 1
	if i < 0 {
		i = 0
	}
	s := c.segs[i]
	return s.Y + s.Rate*(t-s.X)
}

// LongTermRate returns the slope of the curve's final segment — the
// sustained rate bound.
func (c Curve) LongTermRate() float64 {
	if len(c.segs) == 0 {
		return 0
	}
	return c.segs[len(c.segs)-1].Rate
}

// BurstAt0 returns the curve's value at t = 0+ (its instantaneous
// burst).
func (c Curve) BurstAt0() float64 { return c.Eval(0) }

// Segments returns a copy of the curve's linear pieces.
func (c Curve) Segments() []Segment {
	out := make([]Segment, len(c.segs))
	copy(out, c.segs)
	return out
}

// Add returns the pointwise sum of two curves: the arrival curve of the
// union of two independent sources. Concavity is preserved.
func Add(a, b Curve) Curve {
	if len(a.segs) == 0 {
		return b
	}
	if len(b.segs) == 0 {
		return a
	}
	// Merge the breakpoints of both curves.
	xs := make([]float64, 0, len(a.segs)+len(b.segs))
	for _, s := range a.segs {
		xs = append(xs, s.X)
	}
	for _, s := range b.segs {
		xs = append(xs, s.X)
	}
	sort.Float64s(xs)
	xs = dedupFloats(xs)

	segs := make([]Segment, 0, len(xs))
	for _, x := range xs {
		segs = append(segs, Segment{
			X:    x,
			Y:    a.Eval(x) + b.Eval(x),
			Rate: a.rateAt(x) + b.rateAt(x),
		})
	}
	return Curve{segs: normalize(segs)}
}

// Sum adds an arbitrary number of curves.
func Sum(curves ...Curve) Curve {
	var acc Curve
	for _, c := range curves {
		acc = Add(acc, c)
	}
	return acc
}

// Min returns the pointwise minimum of two curves. The minimum of two
// concave curves is concave; Min is how rate caps compose with token
// buckets.
func Min(a, b Curve) Curve {
	if len(a.segs) == 0 || len(b.segs) == 0 {
		return Curve{}
	}
	xs := make([]float64, 0, len(a.segs)+len(b.segs)+4)
	for _, s := range a.segs {
		xs = append(xs, s.X)
	}
	for _, s := range b.segs {
		xs = append(xs, s.X)
	}
	// Crossing points between every pair of pieces matter too; for the
	// concave curves used here a single crossing exists, but solve
	// generally: for each adjacent breakpoint interval, if the curves
	// cross inside it, insert the crossing.
	sort.Float64s(xs)
	xs = dedupFloats(xs)
	var crossings []float64
	for i := 0; i < len(xs); i++ {
		x0 := xs[i]
		x1 := x0 + 1e9 // open-ended last interval
		if i+1 < len(xs) {
			x1 = xs[i+1]
		}
		da0 := a.Eval(x0) - b.Eval(x0)
		da1 := a.Eval(x1) - b.Eval(x1)
		if da0 == 0 || da1 == 0 {
			continue
		}
		if (da0 < 0) != (da1 < 0) {
			// Linear on the interval; solve exactly.
			ra := a.rateAt(x0)
			rb := b.rateAt(x0)
			if ra != rb {
				xc := x0 + da0/(rb-ra)
				if xc > x0 && xc < x1 {
					crossings = append(crossings, xc)
				}
			}
		}
	}
	xs = append(xs, crossings...)
	sort.Float64s(xs)
	xs = dedupFloats(xs)

	segs := make([]Segment, 0, len(xs))
	for _, x := range xs {
		av, bv := a.Eval(x), b.Eval(x)
		ar, br := a.rateAt(x), b.rateAt(x)
		// At (near-)ties — which inserted crossing points are by
		// construction — the minimum continues along the lower-rate
		// branch; comparing raw floats there picks a branch at random.
		eps := 1e-9 * (1 + math.Abs(av) + math.Abs(bv))
		switch {
		case math.Abs(av-bv) <= eps:
			if ar <= br {
				segs = append(segs, Segment{X: x, Y: av, Rate: ar})
			} else {
				segs = append(segs, Segment{X: x, Y: bv, Rate: br})
			}
		case av < bv:
			segs = append(segs, Segment{X: x, Y: av, Rate: ar})
		default:
			segs = append(segs, Segment{X: x, Y: bv, Rate: br})
		}
	}
	return Curve{segs: normalize(segs)}
}

// Scale returns the curve k·A(t). k must be nonnegative.
func Scale(a Curve, k float64) Curve {
	if k < 0 {
		panic("netcal: negative scale")
	}
	segs := make([]Segment, len(a.segs))
	for i, s := range a.segs {
		segs[i] = Segment{X: s.X, Y: s.Y * k, Rate: s.Rate * k}
	}
	return Curve{segs: normalize(segs)}
}

// rateAt returns the slope in effect at time t (right-derivative).
func (c Curve) rateAt(t float64) float64 {
	if len(c.segs) == 0 {
		return 0
	}
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].X > t }) - 1
	if i < 0 {
		i = 0
	}
	return c.segs[i].Rate
}

// normalize sorts segments, drops duplicates and merges colinear
// neighbours.
func normalize(segs []Segment) []Segment {
	if len(segs) == 0 {
		return segs
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].X < segs[j].X })
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.X == last.X {
			continue
		}
		// Merge if s continues last's line.
		if s.Rate == last.Rate && math.Abs(last.Y+last.Rate*(s.X-last.X)-s.Y) < 1e-6 {
			continue
		}
		out = append(out, s)
	}
	return out
}

func dedupFloats(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// String renders the curve's segments for debugging.
func (c Curve) String() string {
	if len(c.segs) == 0 {
		return "Curve{0}"
	}
	var b strings.Builder
	b.WriteString("Curve{")
	for i, s := range c.segs {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "t>=%.6g: %.6g+%.6g·t", s.X, s.Y-s.Rate*s.X, s.Rate)
	}
	b.WriteString("}")
	return b.String()
}
