// Package core is Silo's control plane: it couples the placement
// manager (admission control, §4.2) with hypervisor pacer
// configuration (§4.3). Admitting a tenant yields a handle carrying
// its placement and the per-VM pacer guarantees; deploying the handle
// onto a simulated network instantiates paced VMs on the right hosts
// and wires transport endpoints, exactly as the production system
// would configure its filter drivers.
package core

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/pacer"
	"repro/internal/placement"
	"repro/internal/tenant"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Controller is the Silo control plane for one datacenter.
type Controller struct {
	tree   *topology.Tree
	placer *placement.Manager
	nextID int

	handles map[int]*Handle
}

// Handle is an admitted tenant.
type Handle struct {
	Spec      tenant.Spec
	Placement *tenant.Placement
	// PacerGuarantee is the per-VM pacer configuration derived from
	// the tenant's network guarantee.
	PacerGuarantee pacer.Guarantee
	// VMIDs are the globally unique VM identifiers assigned at
	// deployment (empty until Deploy).
	VMIDs []int
}

// New returns a controller over the datacenter.
func New(tree *topology.Tree, opts placement.Options) *Controller {
	return &Controller{
		tree:    tree,
		placer:  placement.NewManager(tree, opts),
		handles: make(map[int]*Handle),
	}
}

// Tree returns the managed topology.
func (c *Controller) Tree() *topology.Tree { return c.tree }

// Placer exposes the placement manager (for instrumentation).
func (c *Controller) Placer() *placement.Manager { return c.placer }

// Admit runs admission control for a tenant request. The returned
// handle's ID is assigned by the controller.
func (c *Controller) Admit(spec tenant.Spec) (*Handle, error) {
	c.nextID++
	spec.ID = c.nextID
	pl, err := c.placer.Place(spec)
	if err != nil {
		return nil, err
	}
	h := &Handle{
		Spec:      spec,
		Placement: pl,
		PacerGuarantee: pacer.Guarantee{
			BandwidthBps: spec.Guarantee.BandwidthBps,
			BurstBytes:   spec.Guarantee.BurstBytes,
			BurstRateBps: spec.Guarantee.BurstRateBps,
			MTUBytes:     1518,
		},
	}
	c.handles[spec.ID] = h
	return h, nil
}

// Release removes an admitted tenant.
func (c *Controller) Release(h *Handle) error {
	if _, ok := c.handles[h.Spec.ID]; !ok {
		return fmt.Errorf("core: tenant %d not admitted", h.Spec.ID)
	}
	delete(c.handles, h.Spec.ID)
	return c.placer.Remove(h.Spec.ID)
}

// MessageLatencyBound returns the tenant's guaranteed message latency
// for a message of the given size (paper §4.1).
func (c *Controller) MessageLatencyBound(h *Handle, msgBytes int) float64 {
	return h.Spec.Guarantee.MessageLatencyBound(float64(msgBytes))
}

// Deploy instantiates the tenant on a simulated network: paced VMs on
// each host per the placement, plus transport endpoints. vmIDBase
// must leave room for Spec.VMs consecutive IDs. Returns one endpoint
// per VM, in VM-index order.
func (c *Controller) Deploy(nw *netsim.Network, f *transport.Fabric, h *Handle, vmIDBase int, topt transport.Options) []*transport.Endpoint {
	topt.Paced = h.Spec.Class == tenant.ClassGuaranteed
	if h.Spec.Class == tenant.ClassBestEffort {
		topt.Prio = netsim.PrioBestEffort
	}
	eps := make([]*transport.Endpoint, h.Spec.VMs)
	h.VMIDs = make([]int, h.Spec.VMs)
	for i := 0; i < h.Spec.VMs; i++ {
		vmID := vmIDBase + i
		h.VMIDs[i] = vmID
		hostID := h.Placement.Servers[i]
		host := nw.Hosts[hostID]
		if topt.Paced {
			if !host.Paced() {
				host.EnablePacing(pacer.NewBatcher(c.tree.Config().LinkBps))
			}
			host.AddVM(pacer.NewVM(vmID, h.PacerGuarantee, nw.Sim.Now()))
		}
		eps[i] = f.AddEndpoint(vmID, hostID, topt)
	}
	return eps
}

// CoordinateHose installs per-destination bucket rates for a static
// communication pattern (paper Figure 8 top row; the production system
// runs this continuously like EyeQ — for the evaluation's static
// patterns a single round suffices).
func (c *Controller) CoordinateHose(nw *netsim.Network, h *Handle, pat workload.Pattern) {
	if len(h.VMIDs) == 0 {
		return
	}
	b := h.Spec.Guarantee.BandwidthBps
	send := map[int]float64{}
	recv := map[int]float64{}
	var flows []pacer.Flow
	for src, dsts := range pat {
		for _, dst := range dsts {
			sID, dID := h.VMIDs[src], h.VMIDs[dst]
			send[sID] = b
			recv[dID] = b
			flows = append(flows, pacer.Flow{Src: sID, Dst: dID})
		}
	}
	rates := pacer.HoseAllocate(send, recv, flows)
	now := nw.Sim.Now()
	for fl, rate := range rates {
		vmIdx := indexOf(h.VMIDs, fl.Src)
		if vmIdx < 0 {
			continue
		}
		host := nw.Hosts[h.Placement.Servers[vmIdx]]
		if vm, ok := host.VM(fl.Src); ok {
			vm.SetDestRate(now, fl.Dst, rate)
		}
	}
}

// StartHoseCoordination launches the dynamic EyeQ-style coordination
// loop for a deployed tenant: every epochNs the coordinator measures
// which VM pairs are active and retunes per-destination rates
// (paper §4.3). Static patterns converge in one epoch; shifting
// workloads track within an epoch. The loop runs until the simulation
// ends.
func (c *Controller) StartHoseCoordination(nw *netsim.Network, h *Handle, epochNs int64) *pacer.Coordinator {
	vms := make(map[int]*pacer.VM, len(h.VMIDs))
	for i, id := range h.VMIDs {
		if vm, ok := nw.Hosts[h.Placement.Servers[i]].VM(id); ok {
			vms[id] = vm
		}
	}
	coord := pacer.NewCoordinator(h.Spec.Guarantee.BandwidthBps, vms)
	var tick func()
	tick = func() {
		coord.Epoch(nw.Sim.Now())
		nw.Sim.After(epochNs, tick)
	}
	nw.Sim.After(0, tick)
	return coord
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
