package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/tenant"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

const gbps = 1e9 / 8

func testTree(t *testing.T) *topology.Tree {
	t.Helper()
	tree, err := topology.New(topology.Config{
		Pods:           1,
		RacksPerPod:    2,
		ServersPerRack: 5,
		SlotsPerServer: 6,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func classASpec(vms int) tenant.Spec {
	return tenant.Spec{
		Name: "classA",
		VMs:  vms,
		Guarantee: tenant.Guarantee{
			BandwidthBps: 0.25 * gbps,
			BurstBytes:   15e3,
			DelayBound:   1e-3,
			BurstRateBps: 1 * gbps,
		},
		FaultDomains: 2,
	}
}

func TestAdmitReleaseLifecycle(t *testing.T) {
	c := New(testTree(t), placement.Options{})
	h, err := c.Admit(classASpec(6))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if h.Spec.ID == 0 {
		t.Error("ID not assigned")
	}
	if len(h.Placement.Servers) != 6 {
		t.Errorf("placement has %d servers", len(h.Placement.Servers))
	}
	if h.PacerGuarantee.BandwidthBps != 0.25*gbps {
		t.Error("pacer guarantee not derived")
	}
	if err := c.Release(h); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := c.Release(h); err == nil {
		t.Error("double release succeeded")
	}
}

func TestMessageLatencyBound(t *testing.T) {
	c := New(testTree(t), placement.Options{})
	h, err := c.Admit(classASpec(4))
	if err != nil {
		t.Fatal(err)
	}
	// 10 KB message, S=15 KB: bound = 10e3/Bmax + d.
	got := c.MessageLatencyBound(h, 10_000)
	want := 10_000/(1*gbps) + 1e-3
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("bound = %v, want %v", got, want)
	}
}

func TestDeployAndRunAllToOne(t *testing.T) {
	tree := testTree(t)
	c := New(tree, placement.Options{})
	h, err := c.Admit(classASpec(5))
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
	f := transport.NewFabric(nw)
	eps := c.Deploy(nw, f, h, 1000, transport.Options{})
	if len(eps) != 5 {
		t.Fatalf("endpoints = %d", len(eps))
	}
	for i, ep := range eps {
		if ep.VMID != 1000+i {
			t.Errorf("endpoint %d vmID = %d", i, ep.VMID)
		}
		if !ep.Options().Paced {
			t.Error("guaranteed tenant endpoint not paced")
		}
	}
	pat := workload.AllToOne(5)
	c.CoordinateHose(nw, h, pat)

	// All senders burst a 15 KB message to VM 0 simultaneously (the
	// OLDI pattern) — all must complete, no drops, within the bound.
	bound := c.MessageLatencyBound(h, 15_000)
	done := 0
	var worst int64
	for i := 1; i < 5; i++ {
		eps[i].SendMessage(1000, 15_000, func(m *transport.Message) {
			done++
			if m.Latency() > worst {
				worst = m.Latency()
			}
		})
	}
	nw.Sim.Run(1e9)
	if done != 4 {
		t.Fatalf("completed %d of 4 bursts", done)
	}
	if drops := nw.TotalDrops(); drops != 0 {
		t.Errorf("drops = %d for compliant bursts", drops)
	}
	// Message latency here includes the returning ack (sender-side
	// completion), so compare against bound + one RTT of slack.
	slackNs := int64(200_000)
	if worst > int64(bound*1e9)+slackNs {
		t.Errorf("worst message latency %d ns exceeds bound %v + slack", worst, bound)
	}
}

func TestDeployBestEffortLowPriority(t *testing.T) {
	tree := testTree(t)
	c := New(tree, placement.Options{})
	h, err := c.Admit(tenant.Spec{Name: "be", VMs: 3, Class: tenant.ClassBestEffort})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
	f := transport.NewFabric(nw)
	eps := c.Deploy(nw, f, h, 2000, transport.Options{})
	for _, ep := range eps {
		if ep.Options().Paced {
			t.Error("best-effort endpoint should not be paced")
		}
		if ep.Options().Prio != netsim.PrioBestEffort {
			t.Error("best-effort endpoint should ride low priority")
		}
	}
}

func TestAdmitRejectsOverload(t *testing.T) {
	c := New(testTree(t), placement.Options{})
	rejected := false
	for i := 0; i < 100; i++ {
		spec := classASpec(6)
		spec.Guarantee.BandwidthBps = 3 * gbps
		spec.Guarantee.BurstRateBps = 10 * gbps
		if _, err := c.Admit(spec); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Error("controller never rejected despite overload")
	}
}
