package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/transport"
)

func TestStartHoseCoordinationConverges(t *testing.T) {
	tree := testTree(t)
	c := New(tree, placement.Options{})
	h, err := c.Admit(classASpec(5))
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
	f := transport.NewFabric(nw)
	eps := c.Deploy(nw, f, h, 1000, transport.Options{})
	c.StartHoseCoordination(nw, h, 500_000)

	// All-to-one bursts under the dynamic loop: complete, no drops.
	done := 0
	for i := 1; i < 5; i++ {
		eps[i].SendMessage(1000, 15_000, func(m *transport.Message) { done++ })
	}
	nw.Sim.Run(20_000_000)
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if nw.TotalDrops() != 0 {
		t.Error("drops under dynamic coordination")
	}
	// After the active phase, the coordinator must have installed
	// receiver-fair rates at some point; after idling, senders revert
	// to the full hose.
	host := nw.Hosts[h.Placement.Servers[1]]
	vm, ok := host.VM(h.VMIDs[1])
	if !ok {
		t.Fatal("paced VM missing")
	}
	if r := vm.DestRate(h.VMIDs[0]); r != h.Spec.Guarantee.BandwidthBps {
		t.Errorf("idle rate = %v, want full hose %v", r, h.Spec.Guarantee.BandwidthBps)
	}
}
