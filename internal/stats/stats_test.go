package stats

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandSplitIndependence(t *testing.T) {
	a := NewRand(7)
	c1 := a.Split()
	c2 := a.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(4)
	const mean = 3.5
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestGenParetoShapeZeroIsExponential(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.GenPareto(0, 2, 0)
	}
	got := sum / n
	if math.Abs(got-2) > 0.05 {
		t.Errorf("GPD(0,2,0) mean = %v, want ~2 (exponential)", got)
	}
}

func TestGenParetoPositiveSupport(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 10000; i++ {
		if v := r.GenPareto(10, 5, 0.2); v < 10 {
			t.Fatalf("GPD sample %v below location 10", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(8)
	var sum, sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {99, 99}, {100, 100},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if s.Median() != 50 {
		t.Errorf("Median = %v", s.Median())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 50.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
	if s.FractionAbove(1) != 0 {
		t.Error("empty FractionAbove should be 0")
	}
}

func TestFractionAbove(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 3, 4, 5})
	if got := s.FractionAbove(3); got != 0.4 {
		t.Errorf("FractionAbove(3) = %v, want 0.4", got)
	}
	if got := s.FractionAbove(0); got != 1 {
		t.Errorf("FractionAbove(0) = %v, want 1", got)
	}
	if got := s.FractionAbove(5); got != 0 {
		t.Errorf("FractionAbove(5) = %v, want 0", got)
	}
}

func TestCDFShape(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("CDF len = %d", len(cdf))
	}
	if cdf[0].Value != 0 || cdf[len(cdf)-1].Value != 999 {
		t.Errorf("CDF endpoints: %v .. %v", cdf[0], cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Fraction < cdf[i-1].Fraction || cdf[i].Value < cdf[i-1].Value {
			t.Errorf("CDF not monotone at %d", i)
		}
	}
	if one := s.CDF(1); len(one) != 1 || one[0].Fraction != 1 {
		t.Errorf("CDF(1) = %v", one)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Buckets[0] != 2 { // 0, 1.9
		t.Errorf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if out := h.Render(20); out == "" {
		t.Error("empty Render")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, pa, pb uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := NewSample(0)
		s.AddAll(vals)
		lo := float64(pa%101) / 1.0
		hi := float64(pb%101) / 1.0
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := s.Percentile(lo), s.Percentile(hi)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 3})
	if out := s.Summary("ms"); out == "" {
		t.Error("empty Summary")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]float64{{1, 2}, {3.5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3.5,4\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSVFile(dir, "out.csv", []string{"v"}, [][]float64{{7}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v\n7\n" {
		t.Errorf("file = %q", data)
	}
}

func TestCDFRows(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	rows := s.CDFRows(5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != 1 || rows[4][0] != 100 {
		t.Errorf("endpoints: %v .. %v", rows[0], rows[4])
	}
	for _, r := range rows {
		if len(r) != 2 || r[1] <= 0 || r[1] > 1 {
			t.Errorf("bad row %v", r)
		}
	}
}
