package stats

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVFormatting(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b,
		[]string{"x", "y", "z"},
		[][]float64{{1, 2.5, 0.001}, {-3, 1e6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y,z\n1,2.5,0.001\n-3,1e+06,0\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}

func TestWriteCSVHeaderOnly(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []string{"a", "b"}, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n" {
		t.Errorf("got %q", b.String())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n < 0 {
		return 0, os.ErrClosed
	}
	return len(p), nil
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	// Fail on the header and on the first row respectively.
	for _, okWrites := range []int{0, 1} {
		err := WriteCSV(&failWriter{n: okWrites}, []string{"a"}, [][]float64{{1}})
		if err == nil {
			t.Errorf("okWrites=%d: writer error swallowed", okWrites)
		}
	}
}

func TestWriteCSVFileNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	err := WriteCSVFile(dir, "series.csv",
		[]string{"v", "f"}, [][]float64{{10, 0.5}, {20, 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); got != "v,f\n10,0.5\n20,1\n" {
		t.Errorf("file contents %q", got)
	}
}

func TestWriteCSVFileBadDir(t *testing.T) {
	// A file where the directory should be makes MkdirAll fail.
	tmp := t.TempDir()
	blocker := filepath.Join(tmp, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVFile(blocker, "x.csv", []string{"a"}, nil); err == nil {
		t.Error("expected error when dir path is a file")
	}
}

func TestCDFRowsMonotonic(t *testing.T) {
	s := NewSample(100)
	for v := 1; v <= 100; v++ {
		s.Add(float64(v))
	}
	rows := s.CDFRows(5)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i, r := range rows {
		if len(r) != 2 {
			t.Fatalf("row %d has %d columns, want 2", i, len(r))
		}
		if r[1] < 0 || r[1] > 1 {
			t.Errorf("row %d fraction %v out of [0,1]", i, r[1])
		}
		if i > 0 && (r[0] < rows[i-1][0] || r[1] < rows[i-1][1]) {
			t.Errorf("row %d not monotonic: %v after %v", i, r, rows[i-1])
		}
	}
	last := rows[len(rows)-1]
	if last[0] != 100 || last[1] != 1 {
		t.Errorf("last row = %v, want [100 1]", last)
	}
}
