package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and answers percentile/CDF queries
// exactly (it keeps all values; experiment populations here are at most
// a few million points, which is fine in memory and avoids sketch
// error in tail percentiles — the paper's headline numbers are p99 and
// p99.9).
type Sample struct {
	vals   []float64
	sorted bool
	sum    float64
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{vals: make([]float64, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// AddAll records every observation in vs.
func (s *Sample) AddAll(vs []float64) {
	s.vals = append(s.vals, vs...)
	s.sorted = false
	for _, v := range vs {
		s.sum += v
	}
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.vals) }

// Sum reports the running total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Median is shorthand for Percentile(50).
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	return s.vals[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	return s.vals[len(s.vals)-1]
}

// FractionAbove reports the fraction of observations strictly greater
// than threshold.
func (s *Sample) FractionAbove(threshold float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	// First index with value > threshold.
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > threshold })
	return float64(len(s.vals)-i) / float64(len(s.vals))
}

// CDFPoint is one (value, cumulative fraction) pair of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF downsampled to at most points entries
// (evenly spaced in rank), always including the minimum and maximum.
func (s *Sample) CDF(points int) []CDFPoint {
	n := len(s.vals)
	if n == 0 || points <= 0 {
		return nil
	}
	s.sort()
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		rank := n - 1
		if points > 1 {
			rank = i * (n - 1) / (points - 1)
		}
		out = append(out, CDFPoint{
			Value:    s.vals[rank],
			Fraction: float64(rank+1) / float64(n),
		})
	}
	return out
}

// Values returns a copy of the raw observations (sorted).
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Summary renders a one-line human-readable digest.
func (s *Sample) Summary(unit string) string {
	return fmt.Sprintf("n=%d min=%.3g p50=%.3g p95=%.3g p99=%.3g p99.9=%.3g max=%.3g %s",
		s.Len(), s.Min(), s.Percentile(50), s.Percentile(95),
		s.Percentile(99), s.Percentile(99.9), s.Max(), unit)
}

// Histogram counts observations into fixed-width buckets; it is used by
// the benchmark harness to render ASCII distributions.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
	width   float64
}

// NewHistogram returns a histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / h.width)
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total reports the number of recorded observations, including under-
// and overflow.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// Render draws the histogram as rows of "lo..hi count ####" bars of the
// given maximum width.
func (h *Histogram) Render(barWidth int) string {
	max := 1
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*h.width
		bar := strings.Repeat("#", c*barWidth/max)
		fmt.Fprintf(&b, "%12.4g..%-12.4g %8d %s\n", lo, lo+h.width, c, bar)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "%26s %8d\n", "<underflow>", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%26s %8d\n", "<overflow>", h.Over)
	}
	return b.String()
}
