package stats

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CSV helpers used by the benchmark harness to dump plottable series
// for every figure.

// WriteCSV writes a header and numeric rows.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	return WriteCSVComment(w, "", header, rows)
}

// WriteCSVComment writes a CSV with a leading "#" provenance comment
// (e.g. obs.RunMeta.CommentLine) before the header; empty means none.
// Plotting tools and the repo's readers treat "#" lines as comments.
func WriteCSVComment(w io.Writer, comment string, header []string, rows [][]float64) error {
	if comment != "" {
		if !strings.HasPrefix(comment, "#") {
			comment = "# " + comment
		}
		if _, err := fmt.Fprintln(w, comment); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVFile writes a CSV to dir/name, creating dir if needed.
func WriteCSVFile(dir, name string, header []string, rows [][]float64) error {
	return WriteCSVFileComment(dir, name, "", header, rows)
}

// WriteCSVFileComment is WriteCSVFile with a provenance comment line.
func WriteCSVFileComment(dir, name, comment string, header []string, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSVComment(f, comment, header, rows)
}

// CDFRows converts a sample's CDF into CSV rows (value, fraction).
func (s *Sample) CDFRows(points int) [][]float64 {
	cdf := s.CDF(points)
	rows := make([][]float64, len(cdf))
	for i, pt := range cdf {
		rows[i] = []float64{pt.Value, pt.Fraction}
	}
	return rows
}
