// Package stats provides deterministic random number generation,
// distribution samplers, and summary statistics (percentiles, CDFs,
// histograms) used by the Silo workload generators, simulators and
// benchmark harness.
//
// Everything here is deterministic given a seed, so every experiment in
// the repository is exactly reproducible.
package stats

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core with an
// xorshift-style output mix). It is not safe for concurrent use; create
// one per goroutine, deriving child seeds with Split.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams on all platforms.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new independent generator from r. The derived stream
// is a function of r's current state, so calling Split at different
// points yields different children.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival times.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// GenPareto samples the generalized Pareto distribution GPD(loc, scale,
// shape) via inverse-transform sampling. The Facebook ETC workload paper
// (Atikoglu et al., SIGMETRICS 2012) models memcached value sizes and
// inter-arrival gaps with this family; Silo §6.1 generates its
// memcached workload from the same fits.
func (r *Rand) GenPareto(loc, scale, shape float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	if shape == 0 {
		return loc - scale*math.Log(1-u)
	}
	return loc + scale*(math.Pow(1-u, -shape)-1)/shape
}

// Normal samples a normal distribution via the Box-Muller transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.Nextafter(0, 1)
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
