package faults

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// TestRuntimeProbeUnderFaults runs the cross-island fault drill — an
// inter-island uplink killed mid-epoch, dropping queued and in-flight
// packets — with the runtime probe attached, and checks that (a) fault
// accounting is unperturbed by probing and (b) the probe's barrier
// accounting stays coherent while islands starve: the pod cut off from
// its sink keeps its worker spinning at barriers, but every worker
// still runs every epoch and busy+stall stays inside the loop lifetime.
func TestRuntimeProbeUnderFaults(t *testing.T) {
	refPort, refTotal := runCrossIslandFault(t, 0)

	tree, err := topology.New(topology.Config{
		Pods:           2,
		RacksPerPod:    2,
		ServersPerRack: 2,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 312e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.BuildParallel(tree, netsim.Options{PropNs: 200}, netsim.ParallelOptions{Workers: 2})
	rt := nw.PS.AttachRuntime()

	hostsPerPod := 4
	for h := 0; h < hostsPerPod; h++ {
		g := &xGen{host: nw.Hosts[h], dst: h + hostsPerPod, remaining: 600}
		g.fn = g.send
		g.host.Sim().At(int64(14*h+1), g.fn)
		nw.Hosts[h+hostsPerPod].FreeOnDeliver = true
	}
	in := NewInjector(nw)
	uplink := tree.PodUpPortID(0)
	sched, err := ParseSchedule(fmt.Sprintf("t=200us link %d down, t=500us link %d up", uplink, uplink))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sched); err != nil {
		t.Fatal(err)
	}
	nw.Run(2_000_000)

	if got := nw.Queues[uplink].Stats.FaultDroppedPkts; got != refPort {
		t.Errorf("probed run port drops %d, probe-free reference %d", got, refPort)
	}
	if got := nw.TotalFaultDrops(); got != refTotal {
		t.Errorf("probed run total drops %d, probe-free reference %d", got, refTotal)
	}

	c := rt.Coord
	if c.Epochs == 0 {
		t.Fatal("no epochs under faults")
	}
	if c.GlobalRuns == 0 {
		t.Error("fault schedule ran no Global batches")
	}
	var stalled int64
	for w := 0; w < rt.NumWorkers(); w++ {
		wr := rt.Worker(w)
		if wr.Epochs != c.Epochs {
			t.Errorf("worker %d ran %d epochs, coordinator %d", w, wr.Epochs, c.Epochs)
		}
		if sum := wr.BusyNs + wr.StallNs; sum > wr.LoopNs {
			t.Errorf("worker %d busy+stall %d exceeds loop %d under faults", w, sum, wr.LoopNs)
		}
		stalled += wr.StallNs
	}
	if stalled == 0 {
		t.Error("no barrier stall recorded while an island was cut off")
	}
	var sent, recv int64
	for i := 0; i < rt.NumIslands(); i++ {
		sent += rt.IslandRT(i).CrossSent
		recv += rt.IslandRT(i).CrossRecv
	}
	if sent != recv || sent != c.CrossMerged {
		t.Errorf("cross conservation broke under faults: sent %d recv %d merged %d",
			sent, recv, c.CrossMerged)
	}
}
