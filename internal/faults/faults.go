// Package faults is the deterministic fault-injection engine for the
// Silo simulator. An Injector, scheduled on the simulation clock, can
// fail and restore individual links (directed ports), whole switches
// (every attached port plus transit), and hosts (NIC + resident VMs),
// and can model transient failures: flap sequences and gray-failure
// drop bursts on a port. Every applied event is a structured record:
// the injector keeps an ordered log, exposes the outage windows for
// SLO fault attribution (FaultIn matches the obs/slo FaultLookup
// signature), and offers an OnEvent tap the recovery control loop
// chains into.
//
// Determinism: the injector holds no randomness and reads no wall
// clock. A schedule applied to the same network and seed produces the
// same event log and the same packet-level outcome on every run.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// Kind classifies an injected event.
type Kind uint8

const (
	KindLinkDown Kind = iota
	KindLinkUp
	KindLinkGrayStart
	KindLinkGrayEnd
	KindSwitchDown
	KindSwitchUp
	KindHostDown
	KindHostUp
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindLinkGrayStart:
		return "link-gray-start"
	case KindLinkGrayEnd:
		return "link-gray-end"
	case KindSwitchDown:
		return "switch-down"
	case KindSwitchUp:
		return "switch-up"
	case KindHostDown:
		return "host-down"
	case KindHostUp:
		return "host-up"
	}
	return "unknown"
}

// IsDown reports whether the kind opens an outage (gray bursts count:
// they lose traffic even though the port is nominally up).
func (k Kind) IsDown() bool {
	return k == KindLinkDown || k == KindLinkGrayStart || k == KindSwitchDown || k == KindHostDown
}

// IsUp reports whether the kind closes an outage.
func (k Kind) IsUp() bool { return !k.IsDown() }

// Event is one applied fault, a structured record consumable by obs
// and the recovery control loop.
type Event struct {
	TimeNs int64  `json:"time_ns"`
	Kind   Kind   `json:"kind"`
	Target string `json:"target"` // e.g. "link 14", "switch tor0", "host 3"
	// Port / HostID identify the primary element (-1 when not a
	// link/host event).
	Port   int `json:"port"`
	HostID int `json:"host"`
	// Servers lists every server whose connectivity the event breaks
	// or repairs — the recovery control loop's input. Sorted.
	Servers []int `json:"servers,omitempty"`
	// Ports lists every directed port the event takes down or up
	// (one entry for a link, the full attached set for a switch).
	Ports []int `json:"ports,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("t=%dns %s %s", e.TimeNs, e.Kind, e.Target)
}

// outage is one contiguous window during which a target was losing
// traffic. endNs < 0 while still open.
type outage struct {
	label   string
	startNs int64
	endNs   int64
}

// Injector applies faults to a built network. Not safe for concurrent
// use; like everything else in netsim it runs on the single-threaded
// simulation loop.
type Injector struct {
	nw     *netsim.Network
	events []Event
	// outages tracks loss windows per target for SLO attribution.
	outages []outage
	open    map[string]int // target -> index of open outage
	// OnEvent, if set, observes every event after its network side
	// effects have been applied. Chain like the netsim taps: preserve
	// the previous hook and call it first.
	OnEvent func(Event)
	// GraceNs extends every closed outage window when answering
	// FaultIn: violations shortly after a restore (retransmit storms,
	// recovery migrations) still attribute to the fault.
	GraceNs int64
}

// NewInjector returns an injector bound to nw.
func NewInjector(nw *netsim.Network) *Injector {
	return &Injector{nw: nw, open: make(map[string]int)}
}

// Events returns the ordered log of applied events.
func (in *Injector) Events() []Event { return in.events }

func (in *Injector) record(ev Event) {
	ev.TimeNs = in.nw.Sim.Now()
	in.events = append(in.events, ev)
	if ev.Kind.IsDown() {
		if _, isOpen := in.open[ev.Target]; !isOpen {
			in.open[ev.Target] = len(in.outages)
			in.outages = append(in.outages, outage{
				label:   fmt.Sprintf("%s %s @%dns", ev.Kind, ev.Target, ev.TimeNs),
				startNs: ev.TimeNs,
				endNs:   -1,
			})
		}
	} else if i, isOpen := in.open[ev.Target]; isOpen {
		in.outages[i].endNs = ev.TimeNs
		delete(in.open, ev.Target)
	}
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
}

// FaultIn reports whether any outage window (extended by GraceNs past
// its close) overlaps [sinceNs, untilNs), returning the fault's label.
// It matches the obs/slo FaultLookup signature and allocates nothing:
// labels are built when the event is recorded.
func (in *Injector) FaultIn(sinceNs, untilNs int64) (string, bool) {
	for i := len(in.outages) - 1; i >= 0; i-- {
		o := in.outages[i]
		end := o.endNs
		if end >= 0 {
			end += in.GraceNs
			if end < sinceNs {
				continue
			}
		}
		if o.startNs < untilNs && (end < 0 || end >= sinceNs) {
			return o.label, true
		}
	}
	return "", false
}

// --- link faults ---

// FailLink fails directed port pid: queued and in-flight packets are
// dropped with fault attribution and arrivals are dropped until
// RestoreLink.
func (in *Injector) FailLink(pid int) {
	in.nw.Queues[pid].Fail()
	in.record(in.linkEvent(KindLinkDown, pid))
}

// RestoreLink brings directed port pid back into service.
func (in *Injector) RestoreLink(pid int) {
	in.nw.Queues[pid].Restore()
	in.record(in.linkEvent(KindLinkUp, pid))
}

// GrayLink puts port pid into gray failure (arrivals dropped, port
// nominally up) for durNs, scheduling the recovery itself.
func (in *Injector) GrayLink(pid int, durNs int64) {
	in.nw.Queues[pid].SetLossy(true)
	in.record(in.linkEvent(KindLinkGrayStart, pid))
	in.nw.Sim.After(durNs, func() {
		in.nw.Queues[pid].SetLossy(false)
		in.record(in.linkEvent(KindLinkGrayEnd, pid))
	})
}

// FlapLink fails and restores port pid cycles times: down for downNs,
// up for upNs, starting now.
func (in *Injector) FlapLink(pid, cycles int, downNs, upNs int64) {
	if cycles <= 0 {
		return
	}
	in.FailLink(pid)
	in.nw.Sim.After(downNs, func() {
		in.RestoreLink(pid)
		in.nw.Sim.After(upNs, func() {
			in.FlapLink(pid, cycles-1, downNs, upNs)
		})
	})
}

func (in *Injector) linkEvent(kind Kind, pid int) Event {
	return Event{
		Kind:    kind,
		Target:  fmt.Sprintf("link %d", pid),
		Port:    pid,
		HostID:  -1,
		Servers: in.linkServers(pid),
		Ports:   []int{pid},
	}
}

// linkServers lists the servers cut off (in at least one direction) by
// the loss of directed port pid.
func (in *Injector) linkServers(pid int) []int {
	tree := in.nw.Tree
	port := tree.Port(pid)
	switch {
	case port.Level == topology.LevelServer: // NIC up-port
		return []int{pid - tree.ServerUpPortID(0)}
	case port.Level == topology.LevelRack && port.Dir == topology.Down:
		return []int{pid - tree.RackDownPortID(0)}
	case port.Level == topology.LevelRack && port.Dir == topology.Up:
		return rackServers(tree, pid-tree.RackUpPortID(0))
	case port.Level == topology.LevelPod && port.Dir == topology.Down:
		return rackServers(tree, pid-tree.PodDownPortID(0))
	case port.Level == topology.LevelPod && port.Dir == topology.Up:
		return podServers(tree, pid-tree.PodUpPortID(0))
	default: // core down-port
		return podServers(tree, pid-tree.CoreDownPortID(0))
	}
}

func rackServers(tree *topology.Tree, r int) []int {
	lo, hi := tree.ServersOfRack(r)
	return serverRange(lo, hi)
}

func podServers(tree *topology.Tree, p int) []int {
	rlo, rhi := tree.RacksOfPod(p)
	lo, _ := tree.ServersOfRack(rlo)
	_, hi := tree.ServersOfRack(rhi - 1)
	return serverRange(lo, hi)
}

func serverRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for s := lo; s < hi; s++ {
		out = append(out, s)
	}
	return out
}

// --- switch faults ---

// SwitchPorts lists the directed ports attached to a named switch
// ("core", "podN", "torN").
func (in *Injector) SwitchPorts(name string) ([]int, error) {
	tree := in.nw.Tree
	var kind string
	var idx int
	if name == "core" {
		kind = "core"
	} else if n, err := fmt.Sscanf(name, "tor%d", &idx); n == 1 && err == nil {
		kind = "tor"
	} else if n, err := fmt.Sscanf(name, "pod%d", &idx); n == 1 && err == nil {
		kind = "pod"
	} else {
		return nil, fmt.Errorf("faults: unknown switch %q (want core, podN, or torN)", name)
	}
	var ports []int
	switch kind {
	case "tor":
		if idx < 0 || idx >= tree.Racks() {
			return nil, fmt.Errorf("faults: switch %q out of range (%d racks)", name, tree.Racks())
		}
		ports = append(ports, tree.RackUpPortID(idx))
		lo, hi := tree.ServersOfRack(idx)
		for s := lo; s < hi; s++ {
			ports = append(ports, tree.RackDownPortID(s))
		}
	case "pod":
		if idx < 0 || idx >= tree.Pods() {
			return nil, fmt.Errorf("faults: switch %q out of range (%d pods)", name, tree.Pods())
		}
		ports = append(ports, tree.PodUpPortID(idx))
		rlo, rhi := tree.RacksOfPod(idx)
		for r := rlo; r < rhi; r++ {
			ports = append(ports, tree.PodDownPortID(r))
		}
	case "core":
		for p := 0; p < tree.Pods(); p++ {
			ports = append(ports, tree.CoreDownPortID(p))
		}
	}
	sort.Ints(ports)
	return ports, nil
}

func (in *Injector) switchByName(name string) (*netsim.Switch, []int, []int, error) {
	ports, err := in.SwitchPorts(name)
	if err != nil {
		return nil, nil, nil, err
	}
	tree := in.nw.Tree
	var sw *netsim.Switch
	var servers []int
	var idx int
	if name == "core" {
		sw = in.nw.CoreSwitch()
		servers = serverRange(0, tree.Servers())
	} else if n, _ := fmt.Sscanf(name, "tor%d", &idx); n == 1 {
		sw = in.nw.TorSwitch(idx)
		servers = rackServers(tree, idx)
	} else if n, _ := fmt.Sscanf(name, "pod%d", &idx); n == 1 {
		sw = in.nw.PodSwitch(idx)
		servers = podServers(tree, idx)
	}
	return sw, ports, servers, nil
}

// FailSwitch fails a named switch ("core", "podN", "torN"): transit
// packets are fault-dropped and every attached port fails, so buffered
// and in-flight traffic is lost and metered.
func (in *Injector) FailSwitch(name string) error {
	sw, ports, servers, err := in.switchByName(name)
	if err != nil {
		return err
	}
	sw.Fail()
	for _, pid := range ports {
		in.nw.Queues[pid].Fail()
	}
	in.record(Event{
		Kind: KindSwitchDown, Target: "switch " + name,
		Port: -1, HostID: -1, Servers: servers, Ports: ports,
	})
	return nil
}

// RestoreSwitch brings a named switch and its attached ports back.
func (in *Injector) RestoreSwitch(name string) error {
	sw, ports, servers, err := in.switchByName(name)
	if err != nil {
		return err
	}
	sw.Restore()
	for _, pid := range ports {
		in.nw.Queues[pid].Restore()
	}
	in.record(Event{
		Kind: KindSwitchUp, Target: "switch " + name,
		Port: -1, HostID: -1, Servers: servers, Ports: ports,
	})
	return nil
}

// --- host faults ---

// FailHost fails server h: its NIC port drains-and-drops, resident
// VMs stop emitting, and ingress is fault-dropped.
func (in *Injector) FailHost(h int) error {
	if h < 0 || h >= len(in.nw.Hosts) {
		return fmt.Errorf("faults: host %d out of range (%d servers)", h, len(in.nw.Hosts))
	}
	in.nw.Hosts[h].Fail()
	in.record(Event{
		Kind: KindHostDown, Target: fmt.Sprintf("host %d", h),
		Port: in.nw.Tree.ServerUpPortID(h), HostID: h,
		Servers: []int{h}, Ports: []int{in.nw.Tree.ServerUpPortID(h)},
	})
	return nil
}

// RestoreHost brings server h back.
func (in *Injector) RestoreHost(h int) error {
	if h < 0 || h >= len(in.nw.Hosts) {
		return fmt.Errorf("faults: host %d out of range (%d servers)", h, len(in.nw.Hosts))
	}
	in.nw.Hosts[h].Restore()
	in.record(Event{
		Kind: KindHostUp, Target: fmt.Sprintf("host %d", h),
		Port: in.nw.Tree.ServerUpPortID(h), HostID: h,
		Servers: []int{h}, Ports: []int{in.nw.Tree.ServerUpPortID(h)},
	})
	return nil
}

// Apply validates a parsed schedule against the network's topology and
// registers every action on the simulation clock. Validation is
// up-front: a schedule naming a port, host, or switch that does not
// exist fails before anything is scheduled.
func (in *Injector) Apply(sched Schedule) error {
	tree := in.nw.Tree
	for i, a := range sched {
		switch a.Target.Kind {
		case TargetLink:
			if a.Target.Port < 0 || a.Target.Port >= tree.NumPorts() {
				return fmt.Errorf("faults: entry %d: port %d out of range (%d ports)", i+1, a.Target.Port, tree.NumPorts())
			}
		case TargetHost:
			if a.Target.Host < 0 || a.Target.Host >= tree.Servers() {
				return fmt.Errorf("faults: entry %d: host %d out of range (%d servers)", i+1, a.Target.Host, tree.Servers())
			}
		case TargetSwitch:
			if _, err := in.SwitchPorts(a.Target.Switch); err != nil {
				return fmt.Errorf("faults: entry %d: %v", i+1, err)
			}
		}
		if (a.Op == OpGray || a.Op == OpFlap) && a.Target.Kind != TargetLink {
			return fmt.Errorf("faults: entry %d: %s applies to links only", i+1, a.Op)
		}
	}
	for _, a := range sched {
		a := a
		in.nw.Sim.At(a.AtNs, func() {
			switch a.Target.Kind {
			case TargetLink:
				switch a.Op {
				case OpDown:
					in.FailLink(a.Target.Port)
				case OpUp:
					in.RestoreLink(a.Target.Port)
				case OpGray:
					in.GrayLink(a.Target.Port, a.DurNs)
				case OpFlap:
					in.FlapLink(a.Target.Port, a.Cycles, a.DownNs, a.UpNs)
				}
			case TargetSwitch:
				if a.Op == OpDown {
					in.FailSwitch(a.Target.Switch)
				} else {
					in.RestoreSwitch(a.Target.Switch)
				}
			case TargetHost:
				if a.Op == OpDown {
					in.FailHost(a.Target.Host)
				} else {
					in.RestoreHost(a.Target.Host)
				}
			}
		})
	}
	return nil
}
