package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Op is a scheduled action on a fault target.
type Op uint8

const (
	OpDown Op = iota
	OpUp
	OpGray
	OpFlap
)

// String names the op (the grammar keyword).
func (o Op) String() string {
	switch o {
	case OpDown:
		return "down"
	case OpUp:
		return "up"
	case OpGray:
		return "gray"
	case OpFlap:
		return "flap"
	}
	return "unknown"
}

// TargetKind classifies what a schedule entry acts on.
type TargetKind uint8

const (
	TargetLink TargetKind = iota
	TargetSwitch
	TargetHost
)

// Target names a fabric element.
type Target struct {
	Kind   TargetKind
	Port   int    // TargetLink: directed port ID
	Switch string // TargetSwitch: "core", "podN", "torN"
	Host   int    // TargetHost: server ID
}

// String renders the target in grammar form.
func (t Target) String() string {
	switch t.Kind {
	case TargetLink:
		return fmt.Sprintf("link %d", t.Port)
	case TargetSwitch:
		return "switch " + t.Switch
	default:
		return fmt.Sprintf("host %d", t.Host)
	}
}

// Action is one parsed schedule entry.
type Action struct {
	AtNs   int64
	Target Target
	Op     Op
	// DurNs is the gray-failure duration (OpGray).
	DurNs int64
	// Flap parameters (OpFlap).
	Cycles int
	DownNs int64
	UpNs   int64
}

// Schedule is an ordered list of fault actions.
type Schedule []Action

// ParseSchedule parses the -fault flag grammar:
//
//	schedule := entry (',' entry)*
//	entry    := "t=" DUR [target] action
//	target   := "link" PORT | "switch" NAME | "host" ID
//	action   := "down" | "up" | "gray" DUR | "flap" NxDUR/DUR
//	DUR      := Go duration ("2s", "1500us", "1.5ms")
//	NAME     := "core" | "podN" | "torN"
//
// An entry with no target reuses the previous entry's target, so
// "t=2s link 14 down, t=4s up" fails port 14 at 2s and restores it at
// 4s. "flap 3x100us/200us" runs three down(100µs)/up(200µs) cycles;
// "gray 500us" drops arrivals for 500µs while the port stays up.
// Target IDs are validated against the topology at Injector.Apply, not
// here. Errors name the offending entry; malformed input never panics.
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	var prev *Target
	entries := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' })
	for i, raw := range entries {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		a, err := parseEntry(entry, prev)
		if err != nil {
			return nil, fmt.Errorf("faults: entry %d %q: %w", i+1, entry, err)
		}
		sched = append(sched, a)
		t := a.Target
		prev = &t
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("faults: empty schedule")
	}
	return sched, nil
}

func parseEntry(entry string, prev *Target) (Action, error) {
	var a Action
	fields := strings.Fields(entry)
	if len(fields) == 0 {
		return a, fmt.Errorf("empty entry")
	}
	if !strings.HasPrefix(fields[0], "t=") {
		return a, fmt.Errorf(`must start with "t=<duration>"`)
	}
	at, err := time.ParseDuration(strings.TrimPrefix(fields[0], "t="))
	if err != nil {
		return a, fmt.Errorf("bad time %q: %v", fields[0], err)
	}
	if at < 0 {
		return a, fmt.Errorf("time %v is negative", at)
	}
	a.AtNs = at.Nanoseconds()
	rest := fields[1:]

	// Optional target.
	switch {
	case len(rest) >= 2 && rest[0] == "link":
		pid, err := strconv.Atoi(rest[1])
		if err != nil {
			return a, fmt.Errorf("bad port id %q", rest[1])
		}
		a.Target = Target{Kind: TargetLink, Port: pid}
		rest = rest[2:]
	case len(rest) >= 2 && rest[0] == "switch":
		a.Target = Target{Kind: TargetSwitch, Switch: rest[1]}
		rest = rest[2:]
	case len(rest) >= 2 && rest[0] == "host":
		h, err := strconv.Atoi(rest[1])
		if err != nil {
			return a, fmt.Errorf("bad host id %q", rest[1])
		}
		a.Target = Target{Kind: TargetHost, Host: h}
		rest = rest[2:]
	default:
		if prev == nil {
			return a, fmt.Errorf("no target (and no previous entry to inherit one from)")
		}
		a.Target = *prev
	}

	if len(rest) == 0 {
		return a, fmt.Errorf(`missing action (want "down", "up", "gray <dur>", or "flap <n>x<down>/<up>")`)
	}
	switch rest[0] {
	case "down":
		a.Op = OpDown
	case "up":
		a.Op = OpUp
	case "gray":
		if len(rest) < 2 {
			return a, fmt.Errorf(`"gray" needs a duration, e.g. "gray 500us"`)
		}
		d, err := time.ParseDuration(rest[1])
		if err != nil || d <= 0 {
			return a, fmt.Errorf("bad gray duration %q", rest[1])
		}
		a.Op = OpGray
		a.DurNs = d.Nanoseconds()
		rest = rest[1:]
	case "flap":
		if len(rest) < 2 {
			return a, fmt.Errorf(`"flap" needs parameters, e.g. "flap 3x100us/200us"`)
		}
		n, downNs, upNs, err := parseFlap(rest[1])
		if err != nil {
			return a, err
		}
		a.Op = OpFlap
		a.Cycles, a.DownNs, a.UpNs = n, downNs, upNs
		rest = rest[1:]
	default:
		return a, fmt.Errorf("unknown action %q", rest[0])
	}
	if len(rest) > 1 {
		return a, fmt.Errorf("trailing tokens %q", strings.Join(rest[1:], " "))
	}
	return a, nil
}

// parseFlap parses "<n>x<down>/<up>", e.g. "3x100us/200us".
func parseFlap(s string) (cycles int, downNs, upNs int64, err error) {
	nStr, durs, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, 0, fmt.Errorf(`bad flap spec %q (want "<n>x<down>/<up>")`, s)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n <= 0 || n > 1<<20 {
		return 0, 0, 0, fmt.Errorf("bad flap cycle count %q", nStr)
	}
	downStr, upStr, ok := strings.Cut(durs, "/")
	if !ok {
		return 0, 0, 0, fmt.Errorf(`bad flap spec %q (want "<n>x<down>/<up>")`, s)
	}
	down, err := time.ParseDuration(downStr)
	if err != nil || down <= 0 {
		return 0, 0, 0, fmt.Errorf("bad flap down duration %q", downStr)
	}
	up, err := time.ParseDuration(upStr)
	if err != nil || up <= 0 {
		return 0, 0, 0, fmt.Errorf("bad flap up duration %q", upStr)
	}
	return n, down.Nanoseconds(), up.Nanoseconds(), nil
}
