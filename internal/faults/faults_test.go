package faults

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

const gbps = 1e9 / 8

func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	tree, err := topology.New(topology.Config{
		Pods:           2,
		RacksPerPod:    2,
		ServersPerRack: 3,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 312e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return netsim.Build(netsim.NewSim(), tree, netsim.Options{PropNs: 200})
}

func pkt(src, dst, size int) *netsim.Packet {
	return &netsim.Packet{Src: src, Dst: dst, Size: size}
}

// A failed link loses queued, in-flight, and subsequent traffic to the
// fault counters — never the overflow counters — and delivery resumes
// after restore.
func TestLinkFailDropsAndRestores(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	var delivered int
	nw.Hosts[1].Deliver = func(p *netsim.Packet) { delivered++ }

	pid := nw.Tree.ServerUpPortID(0)
	var hookDrops int
	q := nw.Queues[pid]
	q.OnFault = func(p *netsim.Packet) { hookDrops++ }

	// Queue a burst, fail mid-drain, restore later, send again.
	nw.Sim.At(0, func() {
		for i := 0; i < 10; i++ {
			nw.Hosts[0].Send(pkt(0, 1, 1500))
		}
	})
	nw.Sim.At(2000, func() { in.FailLink(pid) }) // ~1.6 pkts serialized at 10G
	nw.Sim.At(10_000, func() { nw.Hosts[0].Send(pkt(0, 1, 1500)) })
	nw.Sim.At(20_000, func() { in.RestoreLink(pid) })
	nw.Sim.At(30_000, func() { nw.Hosts[0].Send(pkt(0, 1, 1500)) })
	nw.Sim.Run(1e9)

	if q.Stats.DroppedPkts != 0 {
		t.Fatalf("fault loss leaked into overflow counter: %d", q.Stats.DroppedPkts)
	}
	if q.Stats.FaultDroppedPkts == 0 {
		t.Fatal("no fault drops recorded")
	}
	if int(q.Stats.FaultDroppedPkts) != hookDrops {
		t.Fatalf("OnFault saw %d drops, counter says %d", hookDrops, q.Stats.FaultDroppedPkts)
	}
	if q.Occupied() != 0 {
		t.Fatalf("occupied bytes leaked: %d", q.Occupied())
	}
	if delivered == 0 {
		t.Fatal("nothing delivered after restore")
	}
	// Conservation: everything enqueued was sent, fault-dropped, or
	// overflow-dropped.
	if q.Stats.EnqueuedPkts != q.Stats.SentPkts+q.Stats.FaultDroppedPkts+q.Stats.DroppedPkts {
		t.Fatalf("packet conservation broken: enq=%d sent=%d fault=%d drop=%d",
			q.Stats.EnqueuedPkts, q.Stats.SentPkts, q.Stats.FaultDroppedPkts, q.Stats.DroppedPkts)
	}
	if len(in.Events()) != 2 {
		t.Fatalf("want 2 events, got %v", in.Events())
	}
}

// A packet mid-propagation when the link dies is lost, not delivered.
func TestInFlightLossOnFail(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	var delivered int
	nw.Hosts[1].Deliver = func(p *netsim.Packet) { delivered++ }

	pid := nw.Tree.RackDownPortID(1) // last hop toward host 1
	// 1500B at 10 Gbps serializes in 1200ns, then 200ns propagation.
	// Fail the last-hop port while the frame is on the wire.
	nw.Sim.At(0, func() { nw.Hosts[0].Send(pkt(0, 1, 1500)) })
	// NIC: 1200+200; ToR down-port starts serializing ~1400, done
	// ~2600, delivers ~2800. Fail at 2700: mid-propagation.
	nw.Sim.At(2700, func() { in.FailLink(pid) })
	nw.Sim.Run(1e7)

	if delivered != 0 {
		t.Fatal("packet delivered through a dead link")
	}
	if nw.Queues[pid].Stats.FaultDroppedPkts != 1 {
		t.Fatalf("want 1 in-flight fault drop, got %d", nw.Queues[pid].Stats.FaultDroppedPkts)
	}
}

// Failing a switch takes down transit and all attached ports; the
// event's Servers list names the rack.
func TestSwitchFail(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	var delivered int
	nw.Hosts[4].Deliver = func(p *netsim.Packet) { delivered++ }

	if err := in.FailSwitch("tor0"); err != nil {
		t.Fatal(err)
	}
	// host 0 (rack 0) -> host 4 (rack 1): must die at tor0.
	nw.Sim.At(1000, func() { nw.Hosts[0].Send(pkt(0, 4, 1500)) })
	nw.Sim.Run(1e7)

	if delivered != 0 {
		t.Fatal("packet crossed a dead ToR")
	}
	if nw.TotalFaultDrops() == 0 {
		t.Fatal("switch failure metered nothing")
	}
	ev := in.Events()[0]
	if ev.Kind != KindSwitchDown {
		t.Fatalf("want switch-down, got %v", ev.Kind)
	}
	want := []int{0, 1, 2}
	if len(ev.Servers) != len(want) {
		t.Fatalf("affected servers = %v, want %v", ev.Servers, want)
	}
	for i, s := range want {
		if ev.Servers[i] != s {
			t.Fatalf("affected servers = %v, want %v", ev.Servers, want)
		}
	}
	// Restore and verify traffic flows again.
	nw2 := nw
	if err := in.RestoreSwitch("tor0"); err != nil {
		t.Fatal(err)
	}
	nw2.Sim.At(nw2.Sim.Now()+1000, func() { nw2.Hosts[0].Send(pkt(0, 4, 1500)) })
	nw2.Sim.Run(nw2.Sim.Now() + 1e7)
	if delivered != 1 {
		t.Fatalf("want 1 delivery after restore, got %d", delivered)
	}
}

// A failed host drops ingress and egress, both metered.
func TestHostFail(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	var delivered int
	nw.Hosts[2].Deliver = func(p *netsim.Packet) { delivered++ }

	if err := in.FailHost(2); err != nil {
		t.Fatal(err)
	}
	nw.Sim.At(1000, func() {
		nw.Hosts[0].Send(pkt(0, 2, 1500)) // ingress to dead host
		nw.Hosts[2].Send(pkt(2, 0, 1500)) // egress from dead host
	})
	nw.Sim.Run(1e7)
	if delivered != 0 {
		t.Fatal("dead host delivered")
	}
	if nw.Hosts[2].FaultDropped == 0 {
		t.Fatal("host fault drops not metered")
	}
	if err := in.RestoreHost(2); err != nil {
		t.Fatal(err)
	}
	nw.Sim.At(nw.Sim.Now()+1000, func() { nw.Hosts[0].Send(pkt(0, 2, 1500)) })
	nw.Sim.Run(nw.Sim.Now() + 1e7)
	if delivered != 1 {
		t.Fatalf("want 1 delivery after restore, got %d", delivered)
	}
}

// Gray failure loses arrivals while the port keeps draining, and ends
// on schedule.
func TestGrayLink(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	var delivered int
	nw.Hosts[1].Deliver = func(p *netsim.Packet) { delivered++ }

	pid := nw.Tree.ServerUpPortID(0)
	nw.Sim.At(0, func() { in.GrayLink(pid, 50_000) })
	nw.Sim.At(10_000, func() { nw.Hosts[0].Send(pkt(0, 1, 1500)) }) // lost
	nw.Sim.At(60_000, func() { nw.Hosts[0].Send(pkt(0, 1, 1500)) }) // flows
	nw.Sim.Run(1e9)

	if delivered != 1 {
		t.Fatalf("want exactly the post-gray packet, got %d deliveries", delivered)
	}
	if nw.Queues[pid].Stats.FaultDroppedPkts != 1 {
		t.Fatalf("want 1 gray drop, got %d", nw.Queues[pid].Stats.FaultDroppedPkts)
	}
	evs := in.Events()
	if len(evs) != 2 || evs[0].Kind != KindLinkGrayStart || evs[1].Kind != KindLinkGrayEnd {
		t.Fatalf("unexpected event log: %v", evs)
	}
}

// Flap generates the full down/up sequence.
func TestFlapLink(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	pid := nw.Tree.ServerUpPortID(0)
	nw.Sim.At(0, func() { in.FlapLink(pid, 3, 1000, 2000) })
	nw.Sim.Run(1e9)
	evs := in.Events()
	if len(evs) != 6 {
		t.Fatalf("want 6 flap events, got %d: %v", len(evs), evs)
	}
	for i, ev := range evs {
		want := KindLinkDown
		if i%2 == 1 {
			want = KindLinkUp
		}
		if ev.Kind != want {
			t.Fatalf("event %d = %v, want %v", i, ev.Kind, want)
		}
	}
	if nw.Queues[pid].Down() {
		t.Fatal("port left down after flap sequence")
	}
}

// FaultIn answers outage-window queries, honoring the grace extension.
func TestFaultIn(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	in.GraceNs = 1000
	pid := nw.Tree.ServerUpPortID(0)
	nw.Sim.At(5000, func() { in.FailLink(pid) })
	nw.Sim.At(8000, func() { in.RestoreLink(pid) })
	nw.Sim.Run(1e6)

	cases := []struct {
		since, until int64
		want         bool
	}{
		{0, 5000, false},     // before the outage
		{5000, 6000, true},   // inside
		{7000, 12000, true},  // spans the close
		{8500, 9000, true},   // within grace
		{9001, 10000, false}, // past grace
	}
	for _, c := range cases {
		label, ok := in.FaultIn(c.since, c.until)
		if ok != c.want {
			t.Fatalf("FaultIn(%d,%d) = %v, want %v", c.since, c.until, ok, c.want)
		}
		if ok && label == "" {
			t.Fatal("empty fault label")
		}
	}
}

// Apply validates targets before scheduling anything.
func TestApplyValidates(t *testing.T) {
	nw := testNet(t)
	in := NewInjector(nw)
	bad := []string{
		"t=1ms link 99999 down",
		"t=1ms host 500 down",
		"t=1ms switch tor9 down",
		"t=1ms switch spine0 down",
		"t=1ms switch tor0 gray 1ms", // gray is link-only
	}
	for _, s := range bad {
		sched, err := ParseSchedule(s)
		if err != nil {
			continue // rejected at parse, also fine for spine0? no: parse accepts, Apply rejects
		}
		if err := in.Apply(sched); err == nil {
			t.Fatalf("Apply(%q) accepted an invalid schedule", s)
		}
	}
	good, err := ParseSchedule("t=1ms switch tor0 down, t=2ms up, t=3ms link 0 flap 2x10us/10us, t=5ms host 1 down")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(good); err != nil {
		t.Fatal(err)
	}
	nw.Sim.Run(1e9)
	if len(in.Events()) != 2+4+1 {
		t.Fatalf("want 7 events, got %d: %v", len(in.Events()), in.Events())
	}
}
