package faults

import (
	"strings"
	"testing"
)

func TestParseScheduleGrammar(t *testing.T) {
	sched, err := ParseSchedule("t=2s link 14 down, t=4s up")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 2 {
		t.Fatalf("want 2 entries, got %d", len(sched))
	}
	if sched[0].AtNs != 2e9 || sched[0].Op != OpDown || sched[0].Target.Port != 14 {
		t.Fatalf("entry 0 = %+v", sched[0])
	}
	// The second entry inherits "link 14".
	if sched[1].AtNs != 4e9 || sched[1].Op != OpUp || sched[1].Target != sched[0].Target {
		t.Fatalf("entry 1 = %+v", sched[1])
	}

	sched, err = ParseSchedule("t=1ms switch tor0 down; t=500us host 3 down, t=2ms link 7 flap 3x100us/200us, t=8ms gray 1ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 {
		t.Fatalf("want 4 entries, got %d", len(sched))
	}
	if sched[0].Target.Kind != TargetSwitch || sched[0].Target.Switch != "tor0" {
		t.Fatalf("entry 0 = %+v", sched[0])
	}
	if sched[1].Target.Kind != TargetHost || sched[1].Target.Host != 3 {
		t.Fatalf("entry 1 = %+v", sched[1])
	}
	f := sched[2]
	if f.Op != OpFlap || f.Cycles != 3 || f.DownNs != 100_000 || f.UpNs != 200_000 {
		t.Fatalf("flap entry = %+v", f)
	}
	g := sched[3]
	if g.Op != OpGray || g.DurNs != 1_000_000 || g.Target.Port != 7 {
		t.Fatalf("gray entry = %+v", g)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty schedule"},
		{"link 14 down", `must start with "t=`},
		{"t=abc link 14 down", "bad time"},
		{"t=-2s link 14 down", "negative"},
		{"t=1s down", "no target"},
		{"t=1s link x down", "bad port id"},
		{"t=1s host x down", "bad host id"},
		{"t=1s link 14", "missing action"},
		{"t=1s link 14 explode", "unknown action"},
		{"t=1s link 14 gray", "needs a duration"},
		{"t=1s link 14 gray -5ms", "bad gray duration"},
		{"t=1s link 14 flap", "needs parameters"},
		{"t=1s link 14 flap 3", "bad flap spec"},
		{"t=1s link 14 flap x100us/200us", "bad flap cycle count"},
		{"t=1s link 14 flap 3x100us", "bad flap spec"},
		{"t=1s link 14 flap 3xbad/200us", "bad flap down duration"},
		{"t=1s link 14 flap 3x100us/bad", "bad flap up duration"},
		{"t=1s link 14 down extra junk", "trailing tokens"},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.in)
		if err == nil {
			t.Fatalf("ParseSchedule(%q) accepted malformed input", c.in)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("ParseSchedule(%q) error %q does not mention %q", c.in, err, c.wantSub)
		}
	}
}

// FuzzParseSchedule asserts the -fault grammar never panics and that
// every accepted schedule re-renders round-trip-stable targets.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		"t=2s link 14 down,t=4s up",
		"t=1ms switch tor0 down",
		"t=1ms host 3 down; t=2ms up",
		"t=500us link 7 flap 3x100us/200us",
		"t=8ms link 7 gray 1ms",
		"t=0s link 0 down",
		"t=1h switch core down",
		",,,",
		"t=1s link 9223372036854775807 down",
		"t=9999999h link 1 down",
		"t=1s\tlink\t1\tdown",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s)
		if err != nil {
			if sched != nil {
				t.Fatal("non-nil schedule returned with error")
			}
			return
		}
		for _, a := range sched {
			if a.AtNs < 0 {
				t.Fatalf("accepted negative time: %+v", a)
			}
			if a.Op == OpFlap && (a.Cycles <= 0 || a.DownNs <= 0 || a.UpNs <= 0) {
				t.Fatalf("accepted degenerate flap: %+v", a)
			}
			if a.Op == OpGray && a.DurNs <= 0 {
				t.Fatalf("accepted degenerate gray: %+v", a)
			}
			// Target renders without panicking.
			_ = a.Target.String()
		}
	})
}
