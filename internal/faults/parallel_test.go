package faults

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// xGen streams packets from one host to a fixed destination, one every
// 1400 ns, on the host's own island sim. Offsets 14·h+1 keep the
// workload tie-free across island boundaries (see netsim's parallel
// equivalence test for the construction).
type xGen struct {
	host      *netsim.Host
	dst       int
	remaining int
	fn        func()
}

func (g *xGen) send() {
	sim := g.host.Sim()
	p := sim.AllocPacket()
	p.Src, p.Dst = g.host.ID, g.dst
	p.Size = 1500
	g.host.Send(p)
	g.remaining--
	if g.remaining > 0 {
		sim.After(1400, g.fn)
	}
}

// runCrossIslandFault drives pod0 → pod1 traffic through a schedule
// that kills pod0's uplink (an inter-island crossing link under the
// parallel engine) mid-stream and restores it later. Returns the
// fault-drop count at that port and the fabric-wide fault total.
func runCrossIslandFault(t *testing.T, workers int) (int64, int64) {
	t.Helper()
	tree, err := topology.New(topology.Config{
		Pods:           2,
		RacksPerPod:    2,
		ServersPerRack: 2,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 312e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := netsim.Options{PropNs: 200}
	var nw *netsim.Network
	if workers == 0 {
		nw = netsim.Build(netsim.NewSim(), tree, opts)
	} else {
		nw = netsim.BuildParallel(tree, opts, netsim.ParallelOptions{Workers: workers})
	}
	hostsPerPod := 4
	for h := 0; h < hostsPerPod; h++ {
		g := &xGen{host: nw.Hosts[h], dst: h + hostsPerPod, remaining: 600}
		g.fn = g.send
		g.host.Sim().At(int64(14*h+1), g.fn)
		nw.Hosts[h+hostsPerPod].FreeOnDeliver = true
	}

	in := NewInjector(nw)
	uplink := tree.PodUpPortID(0)
	sched, err := ParseSchedule(fmt.Sprintf("t=200us link %d down, t=500us link %d up", uplink, uplink))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sched); err != nil {
		t.Fatal(err)
	}
	nw.Run(2_000_000)
	return nw.Queues[uplink].Stats.FaultDroppedPkts, nw.TotalFaultDrops()
}

// TestCrossIslandFaultEquivalence is the fault-injection determinism
// gate: a schedule that kills an inter-island link mid-epoch — losing
// queued packets at the source island and in-flight packets metered by
// the destination island — must produce identical FaultDroppedPkts
// accounting on the sequential engine and at every worker count.
func TestCrossIslandFaultEquivalence(t *testing.T) {
	refPort, refTotal := runCrossIslandFault(t, 0)
	if refPort == 0 {
		t.Fatal("fault window dropped nothing at the uplink; workload too sparse")
	}
	if refTotal < refPort {
		t.Fatalf("total fault drops %d < port drops %d", refTotal, refPort)
	}
	for _, workers := range []int{1, 2, 8} {
		port, total := runCrossIslandFault(t, workers)
		if port != refPort || total != refTotal {
			t.Errorf("workers=%d: fault accounting diverges: port=%d total=%d, want port=%d total=%d",
				workers, port, total, refPort, refTotal)
		}
	}
}
