// Package silo is a Go implementation of Silo (SIGCOMM 2015):
// predictable message latency for cloud applications in multi-tenant
// datacenters.
//
// Silo gives each tenant VM three network guarantees — bandwidth B,
// burst allowance S, and in-network packet delay d (plus a burst-rate
// cap Bmax) — from which the tenant can compute a hard upper bound on
// the latency of any message between its VMs. Two mechanisms enforce
// the guarantees:
//
//   - a placement manager that admits tenants and places their VMs
//     using network calculus, so that worst-case queuing at every
//     switch port stays within the port's buffer (no loss) and the
//     queue capacities along every intra-tenant path sum to at most d;
//   - a hypervisor pacer that shapes each VM's traffic to its
//     guarantee with a token-bucket hierarchy and achieves
//     sub-microsecond inter-packet spacing without losing NIC I/O
//     batching, by padding batches with "void" packets that the first
//     switch discards.
//
// # Quick start
//
//	tree, _ := silo.NewDatacenter(silo.DatacenterConfig{
//		Pods: 1, RacksPerPod: 4, ServersPerRack: 10, SlotsPerServer: 8,
//		LinkBps: silo.Gbps(10), BufferBytes: 312e3,
//		NICBufferBytes: 62.5e3, RackOversub: 5, PodOversub: 5,
//	})
//	ctl := silo.NewController(tree, silo.PlacementOptions{})
//	h, err := ctl.Admit(silo.TenantSpec{
//		Name: "oldi", VMs: 16,
//		Guarantee: silo.Guarantee{
//			BandwidthBps: silo.Mbps(250), BurstBytes: 15e3,
//			DelayBound: 1e-3, BurstRateBps: silo.Gbps(1),
//		},
//	})
//	// err == nil: the tenant's guarantees are enforceable. A 20 KB
//	// message will never take longer than:
//	bound := ctl.MessageLatencyBound(h, 20e3)
//
// The packet-level simulator (NewNetwork / NewFabric) lets you run
// paced tenants against TCP/DCTCP/HULL baselines; the flow-level
// simulator (flowsim) reproduces the paper's datacenter-scale
// placement study. See the examples directory and EXPERIMENTS.md.
package silo

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pacer"
	"repro/internal/placement"
	"repro/internal/tenant"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Rate helpers convert link speeds to the bytes/second used
// throughout.

// Gbps converts gigabits/sec to bytes/sec.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Mbps converts megabits/sec to bytes/sec.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

// Topology.

// DatacenterConfig describes a multi-rooted tree datacenter.
type DatacenterConfig = topology.Config

// Datacenter is an instantiated topology.
type Datacenter = topology.Tree

// NewDatacenter builds a datacenter from a config.
func NewDatacenter(cfg DatacenterConfig) (*Datacenter, error) { return topology.New(cfg) }

// Tenants and guarantees.

// Guarantee is the per-VM triple {B, S, d} plus Bmax.
type Guarantee = tenant.Guarantee

// TenantSpec is a tenant admission request.
type TenantSpec = tenant.Spec

// TenantPlacement records where a tenant's VMs landed.
type TenantPlacement = tenant.Placement

// TenantClass partitions tenants by guarantee level.
type TenantClass = tenant.Class

// Tenant classes.
const (
	ClassGuaranteed = tenant.ClassGuaranteed
	ClassBestEffort = tenant.ClassBestEffort
)

// Control plane.

// Controller is Silo's control plane: admission, placement, pacer
// configuration.
type Controller = core.Controller

// TenantHandle is an admitted tenant.
type TenantHandle = core.Handle

// PlacementOptions tunes the placement manager.
type PlacementOptions = placement.Options

// NewController returns a Silo control plane over a datacenter.
func NewController(tree *Datacenter, opts PlacementOptions) *Controller {
	return core.New(tree, opts)
}

// ErrRejected is returned (wrapped) when admission control cannot
// satisfy a request.
var ErrRejected = placement.ErrRejected

// Baseline placers (for comparisons).

// NewOktopusPlacer returns the bandwidth-only baseline placer.
func NewOktopusPlacer(tree *Datacenter) *placement.Oktopus { return placement.NewOktopus(tree) }

// NewLocalityPlacer returns the network-oblivious greedy placer.
func NewLocalityPlacer(tree *Datacenter) *placement.Locality { return placement.NewLocality(tree) }

// Packet-level simulation.

// Network is a packet-level datacenter instance.
type Network = netsim.Network

// NetworkOptions configures switch behaviour.
type NetworkOptions = netsim.Options

// NetPacket is one simulated frame.
type NetPacket = netsim.Packet

// Sim is the discrete-event clock.
type Sim = netsim.Sim

// NewNetwork instantiates a datacenter as a packet-level simulation.
func NewNetwork(tree *Datacenter, opts NetworkOptions) *Network {
	return netsim.Build(netsim.NewSim(), tree, opts)
}

// Transports.

// Fabric wires transport endpoints onto a network.
type Fabric = transport.Fabric

// Endpoint is one VM's transport stack.
type Endpoint = transport.Endpoint

// Message is one application message with latency/RTO accounting.
type Message = transport.Message

// TransportOptions configures an endpoint.
type TransportOptions = transport.Options

// Transport variants.
const (
	TransportReno  = transport.Reno
	TransportDCTCP = transport.DCTCP
)

// NewFabric attaches a transport fabric to a network.
func NewFabric(nw *Network) *Fabric { return transport.NewFabric(nw) }

// Pacing primitives (exposed for direct use and benchmarks).

// PacerGuarantee configures a VM pacer.
type PacerGuarantee = pacer.Guarantee

// PacedVM is one VM's token-bucket chain.
type PacedVM = pacer.VM

// Batcher implements paced IO batching with void packets.
type Batcher = pacer.Batcher

// NewPacedVM returns a pacer for one VM.
func NewPacedVM(id int, g PacerGuarantee, start int64) *PacedVM {
	return pacer.NewVM(id, g, start)
}

// NewBatcher returns a paced-IO batcher for a NIC line rate.
func NewBatcher(lineRateBps float64) *Batcher { return pacer.NewBatcher(lineRateBps) }

// Workload patterns.

// Pattern maps each source VM index to destination VM indices.
type Pattern = workload.Pattern

// AllToOne returns the OLDI partition/aggregate pattern.
func AllToOne(n int) Pattern { return workload.AllToOne(n) }

// AllToAll returns the shuffle pattern.
func AllToAll(n int) Pattern { return workload.AllToAll(n) }
