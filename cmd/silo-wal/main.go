// Command silo-wal inspects a durable placement store offline: it
// lists the snapshots and WAL segments in a store directory, flags
// torn or corrupt tails, replays the log in memory (the same
// algorithm recovery runs, without modifying a byte on disk), and
// verifies the recovered state's invariants.
//
// Usage:
//
//	silo-wal STORE_DIR             # summary + verdict
//	silo-wal -records STORE_DIR    # additionally list every record
//	silo-wal -json STORE_DIR       # machine-readable report to stdout
//
// The exit status is 0 when a recovery from the dir would come up in
// normal mode, 1 when it would enter safe mode (missing history) or
// fail invariants — so the tool doubles as a fsck for CI and for the
// chaos soak's post-mortem.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/placement/durable"
)

func main() {
	var (
		records = flag.Bool("records", false, "list every WAL record in replay order")
		asJSON  = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: silo-wal [-records] [-json] STORE_DIR")
		os.Exit(2)
	}

	rep, err := durable.Inspect(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep.Render())
		if *records {
			fmt.Println("records:")
			for _, rec := range rep.Records {
				fmt.Println("  " + durable.RenderRecord(rec))
			}
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
