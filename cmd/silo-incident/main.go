// Command silo-incident inspects an incident report written by
// silo-sim -incidents (or by the fault-drill harness): the correlated
// view that joins guarantee violations, SLO burn alerts, introspection
// envelope evidence, and injected faults into root-caused incidents.
//
// Usage:
//
//	silo-sim -duration 0.05 -fault 'tor0@20ms' -incidents run-incidents.json
//	silo-incident run-incidents.json              # incident list
//	silo-incident -id 1 run-incidents.json        # drill-down: causal timeline
//	silo-incident -csv out.csv run-incidents.json # CSV export
//	silo-incident -json - run-incidents.json      # JSON re-export (stdout)
//
// Each incident carries a verdict from the closed taxonomy —
// injected-fault, self-inflicted, neighbor-interference, bound-breach,
// unexplained — and the drill-down shows the causal timeline that
// justifies it. Exit status is 1 when the report contains bound-breach
// incidents (the paper-falsifying case) so scripted drills page.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/incident"
)

func main() {
	var (
		id      = flag.Int("id", 0, "drill into incident N (causal timeline)")
		csvOut  = flag.String("csv", "", "export incidents as CSV to the path ('-' = stdout)")
		jsonOut = flag.String("json", "", "re-export the report as JSON to the path ('-' = stdout)")
		quiet   = flag.Bool("q", false, "suppress the incident list (exports/drill-down only)")

		metricsOut = flag.String("metrics", "", "export report metrics on exit (\"-\" = Prometheus to stdout, *.json = expvar JSON, else Prometheus to file)")
		httpAddr   = flag.String("http", "", "serve /metrics and /debug/vars on this address while the tool runs")
		pprofOn    = flag.Bool("pprof", false, "additionally expose /debug/pprof on the -http address")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: silo-incident [flags] <incidents.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	for flagName, p := range map[string]string{"-csv": *csvOut, "-json": *jsonOut, "-metrics": *metricsOut} {
		if err := obs.ValidateOutputPath(flagName, p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	reg, _, finishObs, err := obs.StartCLI(obs.CLIConfig{
		MetricsPath: *metricsOut, HTTPAddr: *httpAddr, Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep, err := incident.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg.GaugeFunc("silo_incident_total", "incidents in the loaded report",
		func() float64 { return float64(len(rep.Incidents)) })
	reg.GaugeFunc("silo_incident_violations_total", "per-packet guarantee violations across all incidents",
		func() float64 { return float64(rep.TotalViolations) })
	reg.GaugeFunc("silo_incident_bound_breaches", "paper-falsifying bound-breach incidents",
		func() float64 { return float64(rep.BoundBreaches) })
	byVerdict := rep.ByVerdict()
	for _, v := range incident.Verdicts() {
		n := byVerdict[v]
		reg.GaugeFunc("silo_incident_verdict_total", "incidents by root-cause verdict",
			func() float64 { return float64(n) }, "verdict", v.String())
	}
	if m := rep.Meta; m != nil {
		fmt.Printf("recorded by: %s\n", strings.TrimPrefix(m.CommentLine(), "# run: "))
	}
	if !*quiet {
		fmt.Print(rep.Render())
	}
	if *id != 0 {
		fmt.Print(rep.RenderIncident(*id))
	}
	if *csvOut != "" {
		w := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteCSV(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rep.BoundBreaches > 0 {
		os.Exit(1)
	}
}
