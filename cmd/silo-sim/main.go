// Command silo-sim runs a packet-level scenario: a delay-sensitive
// all-to-one tenant sharing a rack-scale network with a bandwidth-
// hungry all-to-all tenant, under a chosen scheme (silo, tcp, dctcp,
// hull, okto, okto+), and prints the message latency distribution.
//
// Usage:
//
//	silo-sim -scheme silo -duration 0.1
//	silo-sim -scheme tcp  -duration 0.1
//	silo-sim -scheme silo -http :8080 -slo-report     # live dashboard
//	silo-sim -scheme tcp  -series run_series.json     # dashboard payload to file
//	silo-sim -scheme silo -fault "t=20ms switch tor0 down; t=30ms up" -slo-report
//
// SIGINT/SIGTERM stop the simulation cleanly: telemetry is flushed and
// the -metrics/-trace/-series outputs are written for the simulated
// time covered so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/dashboard"
	"repro/internal/obs/incident"
	"repro/internal/obs/introspect"
	obsruntime "repro/internal/obs/runtime"
	"repro/internal/obs/slo"
	"repro/internal/obs/timeseries"
	"repro/internal/pacer"
	"repro/internal/placement"
	"repro/internal/placement/durable"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

const gbps = 1e9 / 8

func main() {
	var (
		schemeName   = flag.String("scheme", "silo", "scheme (silo|tcp|dctcp|hull|okto|okto+)")
		duration     = flag.Float64("duration", 0.1, "simulated seconds")
		racks        = flag.Int("racks", 2, "racks")
		servers      = flag.Int("servers", 5, "servers per rack")
		vmsA         = flag.Int("vms-a", 9, "VMs of the delay-sensitive tenant")
		vmsB         = flag.Int("vms-b", 9, "VMs of the bulk tenant")
		seed         = flag.Uint64("seed", 3, "rng seed")
		metricsOut   = flag.String("metrics", "", "export metrics on exit (\"-\" = Prometheus to stdout, *.json = expvar JSON, else Prometheus to file)")
		httpAddr     = flag.String("http", "", "serve the live dashboard, /metrics and /debug/vars on this address during the run")
		pprofOn      = flag.Bool("pprof", false, "additionally expose /debug/pprof on the -http address")
		traceOut     = flag.String("trace", "", "record a flight trace and write it on exit (*.json = Chrome trace_event for Perfetto + silo-trace, *.csv = compact spans)")
		traceSample  = flag.Int("trace-sample", 1, "flight-trace sampling divisor: record 1 in N packets (rounded up to a power of two)")
		sloReport    = flag.Bool("slo-report", false, "print the per-tenant SLO conformance and burn-rate report after the run")
		incidentsOut = flag.String("incidents", "", "correlate violations, SLO burns, envelope evidence and faults into root-caused incidents; print the report and write it as JSON to this file on exit (pair with -introspect for verdict evidence; inspect with silo-incident)")
		introOut     = flag.String("introspect", "", "attach the introspection plane (per-VM envelope estimators, per-port guarantee margins) and write its snapshot as JSON to this file on exit (join with silo-trace -why)")
		seriesOut    = flag.String("series", "", "write the dashboard time-series payload (metrics rollup + SLO state) as JSON to this file on exit")
		windowMs     = flag.Float64("window", 1, "SLO / time-series window in simulated milliseconds")
		faultSched   = flag.String("fault", "", "fault schedule, e.g. \"t=20ms link 14 down; t=30ms up\" or \"t=20ms switch tor0 down\" (targets: link PORT, switch core|podN|torN, host ID; actions: down, up, gray DUR, flap NxDOWN/UP)")
		faultDetect  = flag.Duration("fault-detect", 500*time.Microsecond, "control-loop detection delay between an injected fault and the placement Recover call (silo scheme only)")
		workers      = flag.Int("workers", 0, "parallel island workers (0 = sequential engine; >0 partitions the fabric into per-pod islands under conservative lookahead)")
		walDir       = flag.String("wal", "", "durable store directory: write-ahead log every placement mutation (admission, fault recovery, restore) and recover prior control-plane state on start (silo scheme only)")
		snapEvery    = flag.Int("snapshot-every", 0, "with -wal: snapshot + rotate the log every N mutations (0 = default 1024, negative disables)")
		rtReport     = flag.Bool("runtime-report", false, "print the engine self-telemetry report after the run (worker/island busy vs. barrier stall, wheel/arena pressure, imbalance analysis)")
		profEpochs   = flag.Int("profile-epochs", 0, "sample Go runtime metrics every N epoch barriers (sequential engine: every N telemetry windows) and print the bracketed profile after the run")
	)
	flag.Parse()

	// Validate output destinations before the run, so a typo'd path
	// fails in milliseconds instead of after the simulation.
	for _, f := range []struct{ name, path string }{
		{"-metrics", *metricsOut}, {"-trace", *traceOut}, {"-series", *seriesOut}, {"-introspect", *introOut},
		{"-incidents", *incidentsOut},
	} {
		if err := obs.ValidateOutputPath(f.name, f.path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *traceSample < 1 {
		fmt.Fprintf(os.Stderr, "-trace-sample: must be >= 1, got %d\n", *traceSample)
		os.Exit(2)
	}
	if *windowMs <= 0 {
		fmt.Fprintf(os.Stderr, "-window: must be > 0, got %g\n", *windowMs)
		os.Exit(2)
	}
	if *walDir != "" && *schemeName != "silo" {
		fmt.Fprintln(os.Stderr, "-wal requires -scheme silo (the comparison placers have no durable state)")
		os.Exit(2)
	}

	reg, srv, finishObs, err := obs.StartCLI(obs.CLIConfig{
		MetricsPath: *metricsOut,
		HTTPAddr:    *httpAddr,
		Pprof:       *pprofOn,
		// -slo-report, -series and -incidents consume the registry
		// internally even when nothing is exported.
		ForceRegistry: *sloReport || *seriesOut != "" || *incidentsOut != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Provenance for every artifact this run writes: tool, build
	// revision, and the knobs that determine the output byte for byte.
	meta := obs.CollectRunMeta("silo-sim")
	meta.Seed = int64(*seed)
	meta.Workers = *workers
	meta.Scheme = *schemeName

	var scheme experiments.Scheme
	switch *schemeName {
	case "silo":
		scheme = experiments.SchemeSilo
	case "tcp":
		scheme = experiments.SchemeTCP
	case "dctcp":
		scheme = experiments.SchemeDCTCP
	case "hull":
		scheme = experiments.SchemeHULL
	case "okto":
		scheme = experiments.SchemeOkto
	case "okto+":
		scheme = experiments.SchemeOktoPlus
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	tree, err := topology.New(topology.Config{
		Pods:           1,
		RacksPerPod:    *racks,
		ServersPerRack: *servers,
		SlotsPerServer: 4,
		LinkBps:        10 * gbps,
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    5,
		PodOversub:     1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var nw *netsim.Network
	if *workers > 0 {
		// 2 µs pod↔core propagation is the lookahead bound; larger
		// crossing delays mean longer epochs and fewer barriers.
		nw = netsim.BuildParallel(tree, schemeNetOptions(scheme, tree),
			netsim.ParallelOptions{Workers: *workers, CrossPropNs: 2000})
	} else {
		nw = netsim.Build(netsim.NewSim(), tree, schemeNetOptions(scheme, tree))
	}
	f := transport.NewFabric(nw)
	rng := stats.NewRand(*seed)

	gA := tenant.Guarantee{BandwidthBps: 0.25 * gbps, BurstBytes: 15e3, DelayBound: 1e-3, BurstRateBps: 1 * gbps}
	gB := tenant.Guarantee{BandwidthBps: 2 * gbps, BurstBytes: 1.5e3, BurstRateBps: 2 * gbps}

	placer := schemePlacer(scheme, tree)
	var dur *durable.Manager
	if *walDir != "" {
		d, info, derr := durable.Open(*walDir, tree, durable.Options{
			SnapshotEvery: *snapEvery,
			Meta:          &meta,
			Metrics:       durable.NewMetrics(reg),
		})
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(1)
		}
		fmt.Println(info.Render())
		if info.SafeMode {
			fmt.Fprintln(os.Stderr, "warning: store recovered into safe mode; new admissions will be rejected")
		}
		d.EnableGauges(reg)
		d.EnableMetrics(reg)
		dur = d
		placer = d
	}
	// mgr is the underlying Silo manager regardless of whether the WAL
	// wraps it; use it for read-only diagnostics only — mutations must
	// go through placer/dur so they are logged.
	mgr, haveMgr := placer.(*placement.Manager)
	if dur != nil {
		mgr, haveMgr = dur.Manager, true
	}
	specA := tenant.Spec{ID: 1, Name: "oldi", VMs: *vmsA, Guarantee: gA, FaultDomains: 2}
	specB := tenant.Spec{ID: 2, Name: "shuffle", VMs: *vmsB, Guarantee: gB, FaultDomains: 2}
	if dur != nil {
		// The scenario's two tenants have fixed IDs. A recovered store
		// may still hold them from the previous run; the data plane is
		// redeployed from scratch each run, so release the old admission
		// (logged like any mutation) before re-placing.
		for _, id := range []int{specA.ID, specB.ID} {
			if _, ok := mgr.Placement(id); ok {
				if err := dur.Remove(id); err != nil {
					fmt.Fprintf(os.Stderr, "wal: releasing recovered tenant %d: %v\n", id, err)
					os.Exit(1)
				}
			}
		}
	}
	plA, err := placer.Place(specA)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tenant A rejected: %v\n", err)
		os.Exit(1)
	}
	plB, err := placer.Place(specB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tenant B rejected: %v\n", err)
		os.Exit(1)
	}
	depA := experiments.DeployTenant(nw, f, scheme, specA, plA, 1000)
	depB := experiments.DeployTenant(nw, f, scheme, specB, plB, 2000)

	// The guarantee audit runs on every invocation (with or without
	// -metrics): admitted {B, S, d} triples are checked against every
	// delivered packet's NIC-to-NIC delay.
	audit := obs.NewGuaranteeAuditor(reg)
	bm := pacer.NewBatchMetrics(reg)
	depA.EnableTelemetry(nw, reg, audit, bm)
	depB.EnableTelemetry(nw, reg, audit, bm)
	nw.RegisterMetrics(reg)
	// Engine self-telemetry: the silo_runtime_* families (and, in
	// parallel mode, the worker/island probe behind them).
	obsruntime.Register(reg, nw)
	if *rtReport && nw.PS != nil {
		nw.PS.AttachRuntime()
	}
	tenantOf := func(vmID int) (int, bool) {
		switch {
		case vmID >= 1000 && vmID < 1000+*vmsA:
			return specA.ID, true
		case vmID >= 2000 && vmID < 2000+*vmsB:
			return specB.ID, true
		}
		return 0, false
	}
	nw.AttachDelayAudit(audit, tenantOf)

	// The incident plane's unified violation stream: one log fed by the
	// auditor's per-delivery tap and (below) the SLO engine's window
	// sink. Wired before the run — the tap is read without locks on the
	// delivery path.
	var vlog *obs.ViolationLog
	if *incidentsOut != "" {
		vlog = obs.NewViolationLog(1 << 16)
		audit.SetViolationTap(vlog.Observe)
	}

	var flight *obs.FlightRecorder
	if *traceOut != "" {
		flight = obs.NewFlightRecorder(0, *traceSample)
		netsim.AttachFlightRecorder(nw, flight)
	}

	// The introspection plane: envelope estimators on every VM of both
	// tenants (pacer commit taps when paced, NIC arrivals otherwise) and
	// guarantee-margin watches on every port, with bounds from the
	// admitted set when the placer is the full Manager. Bounds reflect
	// admission at attach time; a mid-run fault that loosens them shows
	// up as a negative margin, which is the point.
	var intro *introspect.Introspector
	if *introOut != "" {
		intro = introspect.Attach(nw, reg, introspect.Config{})
		for _, d := range []*experiments.Deployment{depA, depB} {
			adm := introspect.Envelope{RateBps: d.Spec.Guarantee.BandwidthBps, BurstBytes: d.Spec.Guarantee.BurstBytes}
			for i, vmID := range d.VMIDs {
				intro.TrackVM(d.Placement.Servers[i], vmID, d.Spec.ID, adm)
			}
		}
		if haveMgr {
			intro.BindPlacement(mgr)
		}
	}

	if scheme.Paced() {
		experiments.CoordinateHose(nw, depA, workload.AllToOne(*vmsA), experiments.HoseFairShare)
		experiments.CoordinateHose(nw, depB, workload.AllToAll(*vmsB), experiments.HoseFairShare)
	}

	horizon := int64(*duration * 1e9)
	drainEnd := horizon + int64(3e9)
	windowNs := int64(*windowMs * 1e6)

	// Continuous profiling, bracketed where the engine is quiescent: at
	// epoch barriers (all workers parked) in parallel mode, at telemetry
	// window ticks on the sequential engine.
	var prof *obsruntime.Profiler
	if *profEpochs > 0 {
		prof = obsruntime.NewProfiler(int64(*profEpochs))
		if nw.PS != nil {
			nw.PS.AttachRuntime().OnEpoch = prof.Hook()
		} else {
			hook := prof.Hook()
			var tick int64
			nw.Sim.Every(windowNs, drainEnd, func(int64) {
				tick++
				hook(tick)
			})
		}
	}

	// Fault injection: parse and validate the -fault schedule, and (on
	// the silo scheme, whose placer is the full Manager) close the
	// control loop: every down event triggers Recover after the
	// -fault-detect delay, evacuating and re-admitting affected tenants;
	// every up event returns the repaired servers to the placement pool.
	// Recovery here is control-plane only — pacer VMs and transport
	// endpoints are not re-deployed (see experiments.RunFailureDrill for
	// the full data-plane drill).
	var inj *faults.Injector
	var recoveries []*placement.RecoveryReport
	if *faultSched != "" {
		sched, err := faults.ParseSchedule(*faultSched)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		inj = faults.NewInjector(nw)
		inj.GraceNs = 5 * windowNs
		// With -wal, recovery mutations must go through the durable
		// wrapper so every ladder step is logged before it applies.
		type recoverCtl interface {
			Recover(failedServers, failedPorts []int, opts placement.RecoverOptions) *placement.RecoveryReport
			RestoreServers(servers ...int)
		}
		var ctl recoverCtl
		if dur != nil {
			ctl = dur
		} else if haveMgr {
			ctl = mgr
		}
		if ctl != nil {
			detectNs := faultDetect.Nanoseconds()
			inj.OnEvent = func(ev faults.Event) {
				nw.Sim.After(detectNs, func() {
					if ev.Kind.IsDown() {
						rep := ctl.Recover(ev.Servers, ev.Ports, placement.RecoverOptions{})
						if rep.LogErr != nil {
							fmt.Fprintf(os.Stderr, "wal: recovery aborted, log unavailable: %v\n", rep.LogErr)
						}
						if len(rep.Affected) > 0 {
							recoveries = append(recoveries, rep)
						}
					} else {
						ctl.RestoreServers(ev.Servers...)
					}
				})
			}
		}
		if err := inj.Apply(sched); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// Continuous telemetry: every -window of simulated time, snapshot
	// the registry into the time-series rollup and advance the SLO
	// burn-rate engine, with the live port-window tracker naming the
	// culprit port of each violating window.
	// The incident correlator re-runs at every window flush, so the
	// dashboard panel and the silo_incident_* metric families track the
	// run live; the authoritative correlation (with the introspection
	// snapshot as verdict evidence) happens once more at exit.
	var corr *incident.Correlator
	if vlog != nil {
		corr = incident.New(incident.Config{MergeNs: 2 * windowNs})
		corr.SetPortMeta(nw.PortMeta())
		corr.SetMeta(&meta)
		if reg != nil {
			corr.RegisterMetrics(reg)
		}
	}

	var rollup *timeseries.Rollup
	var engine *slo.Engine
	if reg != nil {
		rollup = timeseries.NewRollup(reg, 512)
		tracker := netsim.AttachPortWindowTracker(nw)
		engine = slo.New(slo.Config{WindowNs: windowNs}, audit, tracker)
		if vlog != nil {
			engine.SetViolationSink(vlog.Observe)
		}
		nw.Sim.Every(windowNs, drainEnd, func(now int64) {
			rollup.Capture(now)
			engine.Flush(now)
			tracker.Reset()
			if corr != nil {
				corr.SetViolations(vlog.Events())
				if inj != nil {
					corr.SetFaultEvents(inj.Events(), inj.GraceNs)
				}
				corr.SetAlerts(engine.Events())
				corr.Correlate()
			}
		})
	}
	if inj != nil {
		// Violations in windows overlapping an injected outage are
		// labeled with the fault and tallied in the report's in-fault
		// column (nil-safe when -slo-report/-series are off).
		engine.SetFaultLookup(inj.FaultIn)
	}
	dashOpts := dashboard.Options{
		Title:     "silo-sim " + *schemeName,
		Rollup:    rollup,
		Engine:    engine,
		Ports:     nw.PortMeta(),
		Incidents: corr,
		Meta:      &meta,
		Runtime:   func() obsruntime.Stats { return obsruntime.Collect(nw) },
		WAL: func() *durable.Status {
			if dur == nil {
				return nil
			}
			s := dur.Status()
			return &s
		},
	}
	if srv != nil {
		dashboard.Attach(srv, dashOpts)
		fmt.Printf("dashboard: http://%s/\n", srv.Addr())
	}

	// Message completions execute on the owning endpoint's island; under
	// -workers they may run on different goroutines, so the shared
	// tallies take a lock (uncontended at message granularity).
	var latMu sync.Mutex
	lat := stats.NewSample(1 << 14)
	rtos := 0
	msgs := 0

	// Tenant A: all-to-one bursts.
	msg := 5000
	meanPeriod := 4 * float64(*vmsA-1) * float64(msg) / gA.BandwidthBps * 1e9
	var round func()
	next := int64(rng.Exp(meanPeriod))
	round = func() {
		for i := 1; i < *vmsA; i++ {
			msgs++
			depA.Endpoints[i].SendMessage(depA.VMIDs[0], msg, func(m *transport.Message) {
				latMu.Lock()
				lat.Add(float64(m.Latency()) / 1e3)
				if m.RTOs > 0 {
					rtos++
				}
				latMu.Unlock()
			})
		}
		next += int64(rng.Exp(meanPeriod))
		if next < horizon {
			nw.Sim.At(next, round)
		}
	}
	nw.Sim.At(next, round)

	// Tenant B: continuous shuffle.
	for i := 0; i < *vmsB; i++ {
		for j := 0; j < *vmsB; j++ {
			if i == j || plB.Servers[i] == plB.Servers[j] {
				continue
			}
			ep := depB.Endpoints[i]
			dst := depB.VMIDs[j]
			// The completion callback runs on the sending host's island,
			// whose clock is exact there; the global clock only advances
			// at epoch barriers and would keep the pump alive past the
			// horizon under -workers.
			hsim := nw.Hosts[plB.Servers[i]].Sim()
			var pump func(*transport.Message)
			pump = func(*transport.Message) {
				if hsim.Now() < horizon {
					ep.SendMessage(dst, 1<<20, pump)
				}
			}
			pump(nil)
		}
	}

	// SIGINT/SIGTERM stop the event loop between events; everything
	// below still runs, so partial-run telemetry and traces are flushed
	// and written rather than lost.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	nw.RunCtx(ctx, drainEnd)
	interrupted := ctx.Err() != nil
	stopSignals()
	if interrupted {
		fmt.Fprintf(os.Stderr, "interrupted at t=%.3f ms simulated; flushing telemetry\n",
			float64(nw.Sim.Now())/1e6)
		if rollup != nil {
			rollup.Capture(nw.Sim.Now())
		}
		if engine != nil {
			engine.Flush(nw.Sim.Now())
		}
	}

	bound := gA.MessageLatencyBound(float64(msg)) * 1e6
	fmt.Printf("scheme=%s  tenantA=%d VMs all-to-one (%d B bursts)  tenantB=%d VMs shuffle\n",
		scheme, *vmsA, msg, *vmsB)
	fmt.Printf("messages=%d completed=%d withRTO=%d drops=%d faultDrops=%d voids=%d\n",
		msgs, lat.Len(), rtos, nw.TotalDrops(), nw.TotalFaultDrops(), nw.TotalVoidsDropped())
	fmt.Printf("latency (µs): %s\n", lat.Summary("µs"))
	fmt.Printf("Silo-style guarantee for this message: %.0f µs\n", bound)
	if scheme == experiments.SchemeSilo {
		if lat.Max() <= bound {
			fmt.Println("=> every message met the guarantee")
		} else {
			fmt.Printf("=> %0.3f%% of messages exceeded the guarantee\n", 100*lat.FractionAbove(bound))
		}
	}
	fmt.Println(audit.Summary())
	if *rtReport {
		st := obsruntime.Collect(nw)
		fmt.Print(st.Render())
		if nw.PS != nil {
			fmt.Print(obsruntime.Analyze(st).Render())
		}
	}
	if prof != nil {
		fmt.Print(prof.Render())
	}
	if inj != nil {
		fmt.Println("fault injection:")
		for _, ev := range inj.Events() {
			fmt.Printf("  %s\n", ev)
		}
		for _, rep := range recoveries {
			fmt.Print(rep.Render())
		}
		if haveMgr {
			if err := mgr.VerifyInvariants(); err != nil {
				fmt.Printf("placement invariants after recovery: FAILED: %v\n", err)
			} else {
				fmt.Println("placement invariants after recovery: ok")
			}
		}
	}
	if flight != nil {
		ports := nw.PortMeta()
		spans := obs.AssembleFlight(flight.Events(), ports)
		violations := obs.AnnotateSpans(spans, audit, tenantOf)
		fmt.Println(obs.SummarizeFlight(spans).Render())
		for i, v := range violations {
			if i >= 3 {
				fmt.Printf("... %d more violations in the trace file\n", len(violations)-3)
				break
			}
			fmt.Print(obs.RenderSpan(v, ports))
		}
		if err := obs.WriteTraceFileMeta(*traceOut, &meta, ports, spans); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("flight trace (1 in %d packets) written to %s\n", flight.SampleN(), *traceOut)
	}
	if *sloReport {
		fmt.Println()
		fmt.Print(engine.RenderReport())
	}
	var snap *introspect.Snapshot
	if intro != nil {
		s := intro.Snapshot()
		s.Meta = &meta
		snap = &s
		fmt.Println()
		fmt.Print(s.Render())
		if err := s.WriteFile(*introOut); err != nil {
			fmt.Fprintf(os.Stderr, "-introspect: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("introspection snapshot written to %s (join with silo-trace -why)\n", *introOut)
	}
	if corr != nil {
		// Authoritative end-of-run correlation: the full violation
		// stream, the final fault log, and the introspection snapshot as
		// verdict evidence (without -introspect, incidents that need
		// envelope evidence stay honestly unexplained).
		corr.SetViolations(vlog.Events())
		if inj != nil {
			corr.SetFaultEvents(inj.Events(), inj.GraceNs)
		}
		if engine != nil {
			corr.SetAlerts(engine.Events())
		}
		corr.SetSnapshot(snap)
		rep := corr.Correlate()
		fmt.Println()
		fmt.Print(rep.Render())
		if err := rep.WriteFile(*incidentsOut); err != nil {
			fmt.Fprintf(os.Stderr, "-incidents: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("incident report written to %s (inspect with silo-incident)\n", *incidentsOut)
	}
	if *seriesOut != "" {
		f, err := os.Create(*seriesOut)
		if err == nil {
			err = dashboard.WriteJSON(f, dashOpts)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "-series: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("time-series payload written to %s\n", *seriesOut)
	}
	if dur != nil {
		// Flush the fsync batch and close: a clean shutdown (including
		// one triggered by SIGINT/SIGTERM above) loses no records.
		if err := dur.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "wal close: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wal: %d mutations logged to %s\n", dur.Seq(), dur.Dir())
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func schemeNetOptions(s experiments.Scheme, tree *topology.Tree) netsim.Options {
	switch s {
	case experiments.SchemeDCTCP:
		return netsim.Options{PropNs: 200, ECNThresholdBytes: 65 * 1500}
	case experiments.SchemeHULL:
		return netsim.Options{PropNs: 200, PhantomGamma: 0.95, PhantomThresholdBytes: 15e3}
	default:
		return netsim.Options{PropNs: 200}
	}
}

func schemePlacer(s experiments.Scheme, tree *topology.Tree) placement.Algorithm {
	switch s {
	case experiments.SchemeSilo:
		return placement.NewManager(tree, placement.Options{})
	case experiments.SchemeOkto, experiments.SchemeOktoPlus:
		return placement.NewOktopus(tree)
	default:
		return placement.NewLocality(tree)
	}
}
