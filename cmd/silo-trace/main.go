// Command silo-trace analyzes a flight trace recorded by
// silo-sim -trace: the per-message latency attribution
//
//	pacing + queueing + serialization + propagation = NIC-to-NIC delay
//
// reassembled from the simulator's lifecycle events. It prints the
// roll-up attribution, the top-K slowest messages hop by hop, the
// per-port queueing table (which port holds packets longest, and how
// often it is a message's worst hop), and a drill-down of every
// delay-bound violation with its culprit port.
//
// Usage:
//
//	silo-sim -scheme tcp -duration 0.05 -trace run.json
//	silo-trace run.json
//	silo-trace -top 10 -violations run.json
//	silo-trace -windows run.json
//
// -windows adds the SLO view of the trace: per-tenant conformance
// bucketed into fixed windows, each violating window naming the
// dominant culprit port — the offline counterpart of silo-sim's live
// burn-rate engine.
//
// -why N joins packet N's hop-by-hop trace with the introspection
// snapshot written by silo-sim -introspect (-margins file): for each
// port the packet crossed, the analytic backlog bound from the
// admitted tenant set versus the occupancy the packet actually found,
// plus the sender's fitted arrival envelope against its admitted
// {B, S} — so the verdict names whether a slow message was
// self-inflicted (sender broke its envelope) or a port ran out of
// modeled headroom.
//
// Chrome trace JSON recordings (*.json) carry full per-hop detail and
// also load directly in Perfetto; CSV recordings (*.csv) reconstruct
// span-level attribution only.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/introspect"
	"repro/internal/obs/slo"
)

func main() {
	var (
		top        = flag.Int("top", 5, "show the K slowest messages hop by hop")
		violations = flag.Bool("violations", false, "drill into every delay-bound violation (default: first 3)")
		portsN     = flag.Int("ports", 10, "rows in the per-port queueing table")
		windows    = flag.Bool("windows", false, "windowed per-tenant SLO conformance with culprit ports")
		windowMs   = flag.Float64("window", 1, "window width for -windows, in simulated milliseconds")
		why        = flag.Uint64("why", 0, "explain packet N: join its hops with the introspection snapshot's port margins and the sender's fitted envelope (needs -margins)")
		marginsIn  = flag.String("margins", "", "introspection snapshot written by silo-sim -introspect (required by -why)")

		metricsOut = flag.String("metrics", "", "export trace summary metrics on exit (\"-\" = Prometheus to stdout, *.json = expvar JSON, else Prometheus to file)")
		httpAddr   = flag.String("http", "", "serve /metrics and /debug/vars on this address while the tool runs")
		pprofOn    = flag.Bool("pprof", false, "additionally expose /debug/pprof on the -http address")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: silo-trace [flags] <trace.json|trace.csv>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := obs.ValidateOutputPath("-metrics", *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	reg, _, finishObs, err := obs.StartCLI(obs.CLIConfig{
		MetricsPath: *metricsOut, HTTPAddr: *httpAddr, Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	meta, ports, spans, err := obs.ReadTraceFileMeta(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if line := meta.CommentLine(); line != "" {
		fmt.Printf("recorded by: %s\n", strings.TrimPrefix(line, "# run: "))
	}

	sum := obs.SummarizeFlight(spans)
	reg.GaugeFunc("silo_trace_spans_total", "spans in the loaded trace",
		func() float64 { return float64(sum.Spans) })
	reg.GaugeFunc("silo_trace_spans_complete", "spans with full lifecycle coverage",
		func() float64 { return float64(sum.Complete) })
	reg.GaugeFunc("silo_trace_violations_total", "delay-bound violations in the trace",
		func() float64 { return float64(sum.Violations) })
	reg.GaugeFunc("silo_trace_mean_total_ns", "mean NIC-to-NIC delay over complete spans",
		func() float64 { return sum.MeanTotalNs })
	reg.GaugeFunc("silo_trace_max_attr_err_ns", "worst attribution-identity error over complete spans",
		func() float64 { return float64(sum.MaxAttributionErrNs) })
	fmt.Println(sum.Render())

	if *top > 0 {
		slow := obs.SlowestSpans(spans, *top)
		if len(slow) > 0 {
			fmt.Printf("\n== %d slowest messages ==\n", len(slow))
			for i := range slow {
				fmt.Print(obs.RenderSpan(&slow[i], ports))
			}
		}
	}

	if stats := obs.AggregatePorts(spans); len(stats) > 0 {
		fmt.Println("\n== per-port queueing (complete spans) ==")
		fmt.Printf("%-16s %8s %12s %12s %10s %12s\n",
			"port", "pkts", "mean q (µs)", "max q (µs)", "worst-of", "max found B")
		for i, st := range stats {
			if i >= *portsN {
				fmt.Printf("... %d more ports\n", len(stats)-*portsN)
				break
			}
			mean := 0.0
			if st.Packets > 0 {
				mean = float64(st.QueueSumNs) / float64(st.Packets) / 1e3
			}
			fmt.Printf("%-16s %8d %12.2f %12.2f %10d %12d\n",
				obs.PortName(ports, st.Port), st.Packets, mean,
				float64(st.QueueMaxNs)/1e3, st.WorstOfSpans, st.OccupiedMaxBytes)
		}
	}

	var viols []*obs.FlightSpan
	for i := range spans {
		if spans[i].Violated() {
			viols = append(viols, &spans[i])
		}
	}
	if len(viols) > 0 {
		fmt.Printf("\n== %d delay-bound violations ==\n", len(viols))
		show := len(viols)
		if !*violations && show > 3 {
			show = 3
		}
		for _, v := range viols[:show] {
			fmt.Print(obs.RenderSpan(v, ports))
			fmt.Printf("  culprit: %s held the packet %.2fµs (%.0f%% of total queueing)\n",
				obs.PortName(ports, v.WorstPort), float64(v.WorstQueueNs)/1e3,
				pct(v.WorstQueueNs, v.QueueNs))
		}
		if show < len(viols) {
			fmt.Printf("... %d more (rerun with -violations)\n", len(viols)-show)
		}
	}

	if *windows {
		fmt.Println("\n== windowed SLO conformance ==")
		fmt.Print(slo.RenderTraceWindows(slo.WindowsFromSpans(spans, int64(*windowMs*1e6)), ports))
	}

	if *why != 0 {
		if *marginsIn == "" {
			fmt.Fprintln(os.Stderr, "-why needs -margins <file> (written by silo-sim -introspect)")
			os.Exit(2)
		}
		snap, err := introspect.ReadFile(*marginsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := explainPacket(spans, ports, snap, *why); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if sum.Complete > 0 && sum.MaxAttributionErrNs == 0 {
		fmt.Println("\nattribution identity holds exactly (0 ns error) on all complete spans")
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// explainPacket joins one packet's hop-by-hop trace with the
// introspection snapshot: the sender's fitted envelope against its
// admitted {B, S}, and each crossed port's analytic backlog bound
// against the end-of-run high-water mark and the occupancy this packet
// found on arrival. The final verdict names the cause of any slowness.
func explainPacket(spans []obs.FlightSpan, ports []obs.PortMeta, snap *introspect.Snapshot, pkt uint64) error {
	var span *obs.FlightSpan
	for i := range spans {
		if spans[i].Pkt == pkt {
			span = &spans[i]
			break
		}
	}
	if span == nil {
		return fmt.Errorf("packet %d not in trace (raise -trace-sample when recording?)", pkt)
	}

	fmt.Printf("\n== why pkt %d ==\n", pkt)
	fmt.Print(obs.RenderSpan(span, ports))

	senderOK := true
	if env, ok := snap.EnvelopeFor(int(span.SrcVM)); ok {
		verdict := "conforming"
		if env.Violated {
			verdict = "VIOLATED"
			senderOK = false
		}
		fmt.Printf("  sender vm%d (tenant %d): admitted B=%.2f MBps S=%.1f KB, fitted B=%.2f MBps S*=%.1f KB — %s\n",
			env.VMID, env.TenantID, env.AdmittedRateBps/1e6, env.AdmittedBurstBytes/1e3,
			env.FittedRateBps/1e6, env.FittedBurstBytes/1e3, verdict)
	} else {
		fmt.Printf("  sender vm%d: no envelope tracked in the snapshot\n", span.SrcVM)
	}

	fmt.Printf("  %-16s %12s %12s %12s %12s\n", "port", "found(KB)", "hwm(KB)", "bound(KB)", "margin(KB)")
	tightPort, tightMargin := -1, 0.0
	for _, h := range span.Hops {
		ph, ok := snap.PortFor(int(h.Port))
		if !ok {
			fmt.Printf("  %-16s %12.1f %12s %12s %12s\n",
				obs.PortName(ports, h.Port), float64(h.OccupiedBytes)/1e3, "-", "-", "-")
			continue
		}
		bound, margin := "inf", "inf"
		if ph.Bounded && ph.Bounds.BacklogBytes >= 0 {
			bound = fmt.Sprintf("%.1f", ph.Bounds.BacklogBytes/1e3)
			margin = fmt.Sprintf("%.1f", ph.MarginBytes/1e3)
			if tightPort < 0 || ph.MarginBytes < tightMargin {
				tightPort, tightMargin = ph.Port, ph.MarginBytes
			}
		}
		fmt.Printf("  %-16s %12.1f %12.1f %12s %12s\n",
			ph.Name, float64(h.OccupiedBytes)/1e3, float64(ph.HWMBytes)/1e3, bound, margin)
	}

	switch {
	case !senderOK:
		fmt.Printf("  verdict: the sender broke its admitted envelope — queueing past the bound is self-inflicted and the guarantee is void\n")
	case tightPort >= 0 && tightMargin <= 0:
		fmt.Printf("  verdict: port %d exhausted its modeled headroom (margin %.1f KB) — the admitted set's worst case was reached on this path\n",
			tightPort, tightMargin/1e3)
	case tightPort >= 0:
		fmt.Printf("  verdict: sender conforming and every crossed port kept positive margin (tightest: port %d, %.1f KB) — delay sits inside the netcal bound by construction\n",
			tightPort, tightMargin/1e3)
	default:
		fmt.Printf("  verdict: sender conforming; no bounded port on the path (run silo-sim with -algo silo so BindPlacement has admission bounds)\n")
	}
	return nil
}
