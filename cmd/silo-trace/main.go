// Command silo-trace analyzes a flight trace recorded by
// silo-sim -trace: the per-message latency attribution
//
//	pacing + queueing + serialization + propagation = NIC-to-NIC delay
//
// reassembled from the simulator's lifecycle events. It prints the
// roll-up attribution, the top-K slowest messages hop by hop, the
// per-port queueing table (which port holds packets longest, and how
// often it is a message's worst hop), and a drill-down of every
// delay-bound violation with its culprit port.
//
// Usage:
//
//	silo-sim -scheme tcp -duration 0.05 -trace run.json
//	silo-trace run.json
//	silo-trace -top 10 -violations run.json
//	silo-trace -windows run.json
//
// -windows adds the SLO view of the trace: per-tenant conformance
// bucketed into fixed windows, each violating window naming the
// dominant culprit port — the offline counterpart of silo-sim's live
// burn-rate engine.
//
// Chrome trace JSON recordings (*.json) carry full per-hop detail and
// also load directly in Perfetto; CSV recordings (*.csv) reconstruct
// span-level attribution only.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/slo"
)

func main() {
	var (
		top        = flag.Int("top", 5, "show the K slowest messages hop by hop")
		violations = flag.Bool("violations", false, "drill into every delay-bound violation (default: first 3)")
		portsN     = flag.Int("ports", 10, "rows in the per-port queueing table")
		windows    = flag.Bool("windows", false, "windowed per-tenant SLO conformance with culprit ports")
		windowMs   = flag.Float64("window", 1, "window width for -windows, in simulated milliseconds")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: silo-trace [flags] <trace.json|trace.csv>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	ports, spans, err := obs.ReadTraceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sum := obs.SummarizeFlight(spans)
	fmt.Println(sum.Render())

	if *top > 0 {
		slow := obs.SlowestSpans(spans, *top)
		if len(slow) > 0 {
			fmt.Printf("\n== %d slowest messages ==\n", len(slow))
			for i := range slow {
				fmt.Print(obs.RenderSpan(&slow[i], ports))
			}
		}
	}

	if stats := obs.AggregatePorts(spans); len(stats) > 0 {
		fmt.Println("\n== per-port queueing (complete spans) ==")
		fmt.Printf("%-16s %8s %12s %12s %10s %12s\n",
			"port", "pkts", "mean q (µs)", "max q (µs)", "worst-of", "max found B")
		for i, st := range stats {
			if i >= *portsN {
				fmt.Printf("... %d more ports\n", len(stats)-*portsN)
				break
			}
			mean := 0.0
			if st.Packets > 0 {
				mean = float64(st.QueueSumNs) / float64(st.Packets) / 1e3
			}
			fmt.Printf("%-16s %8d %12.2f %12.2f %10d %12d\n",
				obs.PortName(ports, st.Port), st.Packets, mean,
				float64(st.QueueMaxNs)/1e3, st.WorstOfSpans, st.OccupiedMaxBytes)
		}
	}

	var viols []*obs.FlightSpan
	for i := range spans {
		if spans[i].Violated() {
			viols = append(viols, &spans[i])
		}
	}
	if len(viols) > 0 {
		fmt.Printf("\n== %d delay-bound violations ==\n", len(viols))
		show := len(viols)
		if !*violations && show > 3 {
			show = 3
		}
		for _, v := range viols[:show] {
			fmt.Print(obs.RenderSpan(v, ports))
			fmt.Printf("  culprit: %s held the packet %.2fµs (%.0f%% of total queueing)\n",
				obs.PortName(ports, v.WorstPort), float64(v.WorstQueueNs)/1e3,
				pct(v.WorstQueueNs, v.QueueNs))
		}
		if show < len(viols) {
			fmt.Printf("... %d more (rerun with -violations)\n", len(viols)-show)
		}
	}

	if *windows {
		fmt.Println("\n== windowed SLO conformance ==")
		fmt.Print(slo.RenderTraceWindows(slo.WindowsFromSpans(spans, int64(*windowMs*1e6)), ports))
	}

	if sum.Complete > 0 && sum.MaxAttributionErrNs == 0 {
		fmt.Println("\nattribution identity holds exactly (0 ns error) on all complete spans")
	}
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
