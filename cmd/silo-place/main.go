// Command silo-place runs Silo admission control over a stream of
// tenant requests and prints each placement decision, the per-port
// queue bounds it implies, and the tenant's message-latency guarantee.
//
// Usage:
//
//	silo-place -pods 2 -racks 5 -servers 10 -slots 8 \
//	    -tenants 20 -vms 16 -bw-mbps 250 -burst-kb 15 -delay-ms 1
//
// A second placer (-algo oktopus|locality) allows side-by-side
// comparison of admission decisions.
//
// With -explain N (silo only), the admission journal explains tenant
// N's decision after the stream runs: every crossed port's cut and
// margin for an accept, or the violated constraint and limiting port
// for a reject. -explain -1 explains every rejected tenant.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/dashboard"
	"repro/internal/obs/timeseries"
	"repro/internal/placement"
	"repro/internal/placement/durable"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/topology"
)

func main() {
	var (
		pods     = flag.Int("pods", 2, "pods")
		racks    = flag.Int("racks", 5, "racks per pod")
		servers  = flag.Int("servers", 10, "servers per rack")
		slots    = flag.Int("slots", 8, "VM slots per server")
		linkGbps = flag.Float64("link-gbps", 10, "server link rate")
		bufKB    = flag.Float64("buf-kb", 312, "switch buffer per port")
		oversub  = flag.Float64("oversub", 5, "oversubscription per level")
		algo     = flag.String("algo", "silo", "placement algorithm (silo|oktopus|locality)")
		workers  = flag.Int("workers", 0, "scope-search goroutines for silo (0 = GOMAXPROCS, 1 = serial; decisions are identical at any setting)")
		explain  = flag.Int("explain", 0, "explain tenant N's admission decision from the journal after the run (-1 = every rejected tenant; silo only)")

		tenants = flag.Int("tenants", 20, "number of tenant requests")
		vms     = flag.Int("vms", 16, "VMs per tenant")
		bwMbps  = flag.Float64("bw-mbps", 250, "per-VM bandwidth guarantee")
		burstKB = flag.Float64("burst-kb", 15, "per-VM burst allowance")
		delayMs = flag.Float64("delay-ms", 1, "packet delay guarantee (0 = none)")
		bmaxG   = flag.Float64("bmax-gbps", 1, "burst rate cap")
		msgKB   = flag.Float64("msg-kb", 20, "message size for the latency bound printout")
		seed    = flag.Uint64("seed", 1, "rng seed")

		walDir    = flag.String("wal", "", "durable store directory: write-ahead log every admission mutation and recover prior state on start (silo only)")
		snapEvery = flag.Int("snapshot-every", 0, "with -wal: snapshot + rotate the log every N mutations (0 = default 1024, negative disables)")

		metricsOut = flag.String("metrics", "", "export metrics on exit (\"-\" = Prometheus to stdout, *.json = expvar JSON, else Prometheus to file)")
		httpAddr   = flag.String("http", "", "serve the dashboard, /metrics and /debug/vars on this address during the run")
		pprofOn    = flag.Bool("pprof", false, "additionally expose /debug/pprof on the -http address")
	)
	flag.Parse()

	// The request stream stops at SIGINT/SIGTERM so an open WAL is
	// flushed and closed instead of losing its fsync batch.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if err := obs.ValidateOutputPath("-metrics", *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *walDir != "" && *algo != "silo" {
		fmt.Fprintln(os.Stderr, "-wal requires -algo silo (the comparison placers have no durable state)")
		os.Exit(2)
	}

	reg, srv, finishObs, err := obs.StartCLI(obs.CLIConfig{
		MetricsPath: *metricsOut, HTTPAddr: *httpAddr, Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var dur *durable.Manager
	if srv != nil {
		// Admission has no simulated clock, so the rollup samples real
		// time while the request stream runs.
		rollup := timeseries.NewRollup(reg, 512)
		stop := dashboard.DriveWallClock(rollup, time.Second)
		defer stop()
		dashboard.Attach(srv, dashboard.Options{
			Title: "silo-place", Rollup: rollup,
			// dur is opened after the topology below; the collector is
			// evaluated per request, so the panel lights up once it is.
			WAL: func() *durable.Status {
				if dur == nil {
					return nil
				}
				s := dur.Status()
				return &s
			},
		})
		fmt.Printf("dashboard: http://%s/\n", srv.Addr())
	}

	tree, err := topology.New(topology.Config{
		Pods:           *pods,
		RacksPerPod:    *racks,
		ServersPerRack: *servers,
		SlotsPerServer: *slots,
		LinkBps:        *linkGbps * 1e9 / 8,
		BufferBytes:    *bufKB * 1e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    *oversub,
		PodOversub:     *oversub,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var placer placement.Algorithm
	switch *algo {
	case "silo":
		if *walDir != "" {
			d, info, derr := durable.Open(*walDir, tree, durable.Options{
				Placement:     placement.Options{Workers: *workers},
				SnapshotEvery: *snapEvery,
				Meta:          ptrMeta(obs.CollectRunMeta("silo-place")),
				Metrics:       durable.NewMetrics(reg),
			})
			if derr != nil {
				fmt.Fprintln(os.Stderr, derr)
				os.Exit(1)
			}
			fmt.Println(info.Render())
			if info.SafeMode {
				fmt.Fprintln(os.Stderr, "warning: store recovered into safe mode; new admissions will be rejected")
			}
			d.EnableGauges(reg)
			d.EnableMetrics(reg)
			if *explain != 0 {
				d.EnableJournal(0)
			}
			dur = d
			placer = d
			break
		}
		m := placement.NewManager(tree, placement.Options{Workers: *workers})
		m.EnableMetrics(reg)
		if *explain != 0 {
			m.EnableJournal(0)
		}
		placer = m
	case "oktopus":
		placer = placement.NewOktopus(tree)
	case "locality":
		placer = placement.NewLocality(tree)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	fmt.Printf("datacenter: %d servers, %d slots, %s placement\n",
		tree.Servers(), tree.Slots(), placer.Name())
	g := tenant.Guarantee{
		BandwidthBps: *bwMbps * 1e6 / 8,
		BurstBytes:   *burstKB * 1e3,
		DelayBound:   *delayMs / 1e3,
		BurstRateBps: *bmaxG * 1e9 / 8,
	}
	fmt.Printf("per-VM guarantee: B=%.0f Mbps S=%.0f KB d=%.2f ms Bmax=%.1f Gbps\n",
		*bwMbps, *burstKB, *delayMs, *bmaxG)
	fmt.Printf("message latency bound (%.0f KB message): %.3f ms\n\n",
		*msgKB, g.MessageLatencyBound(*msgKB*1e3)*1e3)

	rng := stats.NewRand(*seed)
	accepted := 0
	// A recovered store already decided earlier requests; continue the
	// ID stream after them instead of colliding with admitted tenants.
	idBase := 0
	if dur != nil {
		idBase = dur.Accepted() + dur.Rejected()
	}
	var rejectedIDs []int
	for i := 0; i < *tenants; i++ {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "interrupted after %d requests\n", i)
			break
		}
		n := *vms
		if n <= 0 {
			n = 4 + rng.Intn(24)
		}
		id := idBase + i + 1
		spec := tenant.Spec{ID: id, Name: fmt.Sprintf("tenant-%d", id), VMs: n, Guarantee: g, FaultDomains: 2}
		pl, err := placer.Place(spec)
		if err != nil {
			fmt.Printf("tenant-%-3d REJECTED: %v\n", id, err)
			rejectedIDs = append(rejectedIDs, id)
			continue
		}
		accepted++
		perServer := map[int]int{}
		for _, s := range pl.Servers {
			perServer[s]++
		}
		distinct := pl.DistinctServers()
		span := "server"
		if len(distinct) > 1 {
			span = "rack"
			r0 := tree.RackOfServer(distinct[0])
			p0 := tree.PodOfServer(distinct[0])
			for _, s := range distinct[1:] {
				if tree.PodOfServer(s) != p0 {
					span = "datacenter"
					break
				}
				if tree.RackOfServer(s) != r0 {
					span = "pod"
				}
			}
		}
		fmt.Printf("tenant-%-3d placed: %d VMs on %d servers (span: %s)\n",
			id, n, len(distinct), span)
	}
	fmt.Printf("\naccepted %d / %d tenants\n", accepted, *tenants)

	m, haveMgr := placer.(*placement.Manager)
	if dur != nil {
		m, haveMgr = dur.Manager, true
	}
	if haveMgr {
		// Print the five most loaded ports by queue bound.
		type pb struct {
			id    int
			bound float64
		}
		var worst []pb
		for pid := 0; pid < tree.NumPorts(); pid++ {
			if b := m.QueueBound(pid); b > 0 {
				worst = append(worst, pb{pid, b})
			}
		}
		for i := 0; i < len(worst); i++ {
			for j := i + 1; j < len(worst); j++ {
				if worst[j].bound > worst[i].bound {
					worst[i], worst[j] = worst[j], worst[i]
				}
			}
		}
		if len(worst) > 5 {
			worst = worst[:5]
		}
		fmt.Println("\nbusiest ports (worst-case queuing delay vs capacity):")
		for _, w := range worst {
			port := tree.Port(w.id)
			fmt.Printf("  port %-4d %-6s/%-4s bound=%7.1fµs capacity=%7.1fµs\n",
				w.id, port.Level, port.Dir, w.bound*1e6, port.QueueCapacity()*1e6)
		}

		if *explain != 0 {
			ids := []int{*explain}
			if *explain < 0 {
				ids = rejectedIDs
			}
			for _, id := range ids {
				fmt.Printf("\n-- explain tenant-%d --\n%s", id, m.Explain(id))
			}
		}
	}
	if dur != nil {
		// Flush the fsync batch and close: a clean shutdown (including
		// one triggered by SIGINT/SIGTERM above) loses no records.
		if err := dur.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "wal close: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wal: %d mutations logged to %s\n", dur.Seq(), dur.Dir())
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// ptrMeta boxes a RunMeta for the durable store's provenance stamp.
func ptrMeta(m obs.RunMeta) *obs.RunMeta { return &m }
