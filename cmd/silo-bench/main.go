// Command silo-bench regenerates every table and figure from Silo's
// evaluation (SIGCOMM 2015, §6). Each experiment prints the same rows
// or series the paper reports; EXPERIMENTS.md records paper-vs-measured
// values.
//
// Usage:
//
//	silo-bench -run all
//	silo-bench -run fig12 -duration 0.1
//	silo-bench -run fig15
//	silo-bench -regress             # compare microbenchmarks vs BENCH_*.json
//
// Experiments: fig1, table1, fig5, fig10, fig11, fig12 (also emits
// fig13, fig14 and table4), fig15, fig16a, fig16b, placeub, pacerub,
// netsimub, netsimpar, introspectub, incidentub, runtimeub, walub,
// soak (durable control-plane chaos soak; -duration sets wall seconds,
// -soak-report writes the JSON verdict).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/stats"
)

// outdir, when non-empty, receives CSV series for plotting.
var outdir string

// reg is the optional metrics registry (-metrics / -http); nil keeps
// instrumentation disabled.
var reg *obs.Registry

// benchJSON, when non-empty, receives the microbenchmark records as
// machine-readable JSON (see BENCH_placement.json). A *.json path
// names one output file; anything else is a directory that receives
// one BENCH_<name>.json per microbenchmark run.
var benchJSON string

// benchRecords collects the microbenchmark results of this invocation
// for the -regress comparison.
var benchRecords = map[string]experiments.BenchRecord{}

// runMeta stamps every artifact this invocation writes (bench records,
// CSV series, incident reports) with its provenance.
var runMeta obs.RunMeta

// benchBaseline maps each microbenchmark to its committed baseline
// file name.
var benchBaseline = map[string]string{
	"placeub":      "BENCH_placement.json",
	"pacerub":      "BENCH_pacer.json",
	"netsimub":     "BENCH_netsim.json",
	"netsimpar":    "BENCH_netsim_parallel.json",
	"introspectub": "BENCH_introspect.json",
	"incidentub":   "BENCH_incident.json",
	"runtimeub":    "BENCH_runtime.json",
	"walub":        "BENCH_wal.json",
}

// noteBenchRecord stores a microbenchmark record and writes it out if
// -bench-json asked for it.
func noteBenchRecord(rec experiments.BenchRecord) error {
	rec.Meta = &runMeta
	benchRecords[rec.Benchmark] = rec
	if benchJSON == "" {
		return nil
	}
	path := benchJSON
	if !strings.HasSuffix(path, ".json") {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		path = filepath.Join(path, benchBaseline[rec.Benchmark])
	}
	if err := experiments.WriteBenchRecord(path, rec); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	fmt.Printf("benchmark record written to %s\n", path)
	return nil
}

// writeCSV drops a CSV into outdir if one was requested.
func writeCSV(name string, header []string, rows [][]float64) {
	if outdir == "" {
		return
	}
	if err := stats.WriteCSVFileComment(outdir, name, runMeta.CommentLine(), header, rows); err != nil {
		fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
	}
}

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run (all|fig1|table1|fig5|fig10|fig11|fig12|fig15|fig16a|fig16b|placeub|pacerub|netsimub|netsimpar|introspectub|incidentub|runtimeub|walub|parscale|besteffort|burststress|faultdrill|soak)")
		workers   = flag.Int("workers", 0, "island worker count for the parallel-simulator microbenchmark (0 = its default, 8)")
		hotPod    = flag.Int("hot-pod", 0, "for parscale: pod whose hosts inject -hot-factor × the uniform load (imbalance study)")
		hotFactor = flag.Int("hot-factor", 0, "for parscale: load multiplier for -hot-pod's hosts (<= 1 keeps the workload uniform)")
		duration  = flag.Float64("duration", 0, "override simulated seconds for packet-level experiments")
		requests  = flag.Int("requests", 0, "override request count for the placement microbenchmark")
		seed      = flag.Uint64("seed", 0, "override RNG seed")
		outFlag   = flag.String("outdir", "", "also write plottable CSV series to this directory")

		metricsOut = flag.String("metrics", "", "export metrics on exit (\"-\" = Prometheus to stdout, *.json = expvar JSON, else Prometheus to file)")
		httpAddr   = flag.String("http", "", "serve /metrics and /debug/vars on this address during the run")
		pprofOn    = flag.Bool("pprof", false, "additionally expose /debug/pprof on the -http address")
		benchOut   = flag.String("bench-json", "", "write microbenchmark records as JSON: a *.json path for one file, anything else a directory receiving BENCH_<name>.json per bench")

		history = flag.Bool("history", false, "append this invocation's microbenchmark records to "+experiments.BenchHistoryFile+" (RunMeta-stamped JSONL, one line per record)")

		soakReport = flag.String("soak-report", "", "for soak: also write the RunMeta-stamped JSON verdict to this path")

		regress     = flag.Bool("regress", false, "after running, compare microbenchmark records against the committed BENCH_*.json baselines and exit non-zero on regression (with -run all, runs only the microbenchmarks)")
		regressTol  = flag.Float64("regress-tolerance", 50, "regression tolerance in percent on gating metrics (mean, p99, allocs/op)")
		baselineDir = flag.String("baseline-dir", ".", "directory holding the BENCH_*.json baselines for -regress")
	)
	flag.Parse()
	outdir = *outFlag
	benchJSON = *benchOut
	runMeta = obs.CollectRunMeta("silo-bench")
	runMeta.Seed = int64(*seed)
	runMeta.Workers = *workers

	for _, f := range []struct{ name, path string }{
		{"-metrics", *metricsOut}, {"-bench-json", *benchOut},
	} {
		if f.name == "-bench-json" && !strings.HasSuffix(f.path, ".json") {
			continue // directory form; created on first write
		}
		if err := obs.ValidateOutputPath(f.name, f.path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *outFlag != "" {
		// writeCSV MkdirAlls on every write; do it once up front so an
		// uncreatable path (e.g. a file in the way) fails before the run.
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "-outdir: %v\n", err)
			os.Exit(2)
		}
	}

	var finishObs func() error
	var err error
	reg, _, finishObs, err = obs.StartCLI(obs.CLIConfig{
		MetricsPath: *metricsOut, HTTPAddr: *httpAddr, Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	runners := map[string]func() error{
		"fig1":         func() error { return runFig1(*duration, *seed) },
		"table1":       func() error { return runTable1(*seed) },
		"fig5":         runFig5,
		"fig10":        runFig10,
		"fig11":        func() error { return runFig11(*duration, *seed) },
		"fig12":        func() error { return runFig12(*duration, *seed) },
		"fig15":        func() error { return runFig15(*seed) },
		"fig16a":       func() error { return runFig16a(*seed) },
		"fig16b":       func() error { return runFig16b(*seed) },
		"placeub":      func() error { return runPlaceUB(*requests, *seed) },
		"pacerub":      runPacerUB,
		"netsimub":     runNetsimUB,
		"netsimpar":    func() error { return runNetsimParUB(*workers) },
		"introspectub": runIntrospectUB,
		"incidentub":   runIncidentUB,
		"runtimeub":    func() error { return runRuntimeUB(*workers) },
		"parscale":     func() error { return runParallelScale(*hotPod, *hotFactor) },
		"besteffort":   func() error { return runBestEffort(*duration, *seed) },
		"burststress":  runBurstStressCmd,
		"faultdrill":   func() error { return runFaultDrill(*seed) },
		"walub":        runWALUB,
		"soak":         func() error { return runSoak(*duration, *seed, *soakReport) },
	}
	order := []string{"fig1", "table1", "fig5", "fig10", "fig11", "fig12", "fig15", "fig16a", "fig16b", "placeub", "pacerub", "netsimub", "netsimpar", "introspectub", "incidentub", "runtimeub", "walub", "parscale", "besteffort", "burststress", "faultdrill"}

	names := strings.Split(*run, ",")
	if *run == "all" {
		names = order
		if *regress {
			// The regression gate only needs the record-producing
			// microbenchmarks.
			names = []string{"placeub", "pacerub", "netsimub", "netsimpar", "introspectub", "incidentub", "runtimeub", "walub"}
		}
	}
	for _, name := range names {
		fn, ok := runners[name]
		if !ok {
			known := make([]string, 0, len(runners))
			for k := range runners {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", name, strings.Join(known, " "))
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *history && len(benchRecords) > 0 {
		recs := make([]experiments.BenchRecord, 0, len(benchRecords))
		hnames := make([]string, 0, len(benchRecords))
		for name := range benchRecords {
			hnames = append(hnames, name)
		}
		sort.Strings(hnames)
		for _, name := range hnames {
			recs = append(recs, benchRecords[name])
		}
		if err := experiments.AppendBenchHistory(experiments.BenchHistoryFile, recs, &runMeta, time.Time{}); err != nil {
			fmt.Fprintf(os.Stderr, "-history: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%d record(s) appended to %s\n", len(recs), experiments.BenchHistoryFile)
	}
	regressed := false
	if *regress {
		regressed = runRegress(*baselineDir, *regressTol)
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if regressed {
		os.Exit(1)
	}
}

// runRegress compares this invocation's microbenchmark records against
// the committed baselines and reports whether any gating metric
// regressed. A missing baseline is skipped with a note (so a new
// microbenchmark can land before its baseline); an unreadable or
// mismatched baseline counts as a failure.
func runRegress(baselineDir string, tolerancePct float64) bool {
	fmt.Println("==== regression gate ====")
	if len(benchRecords) == 0 {
		fmt.Println("no microbenchmark records to compare (run placeub, pacerub or netsimub)")
		return false
	}
	names := make([]string, 0, len(benchRecords))
	for name := range benchRecords {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		basePath := filepath.Join(baselineDir, benchBaseline[name])
		base, err := experiments.LoadBenchRecord(basePath)
		if os.IsNotExist(err) {
			fmt.Printf("%s: no baseline at %s; skipping\n", name, basePath)
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			continue
		}
		deltas, err := experiments.CompareBenchRecords(base, benchRecords[name], tolerancePct)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Print(experiments.RenderBenchDeltas(name, deltas, tolerancePct))
		if experiments.AnyRegression(deltas) {
			failed = true
		}
	}
	if failed {
		fmt.Println("=> REGRESSION against committed baselines")
	} else {
		fmt.Println("=> all microbenchmarks within tolerance of their baselines")
	}
	return failed
}

func runFig1(duration float64, seed uint64) error {
	p := experiments.DefaultMemcachedParams()
	if duration > 0 {
		p.DurationSec = duration
	}
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Figure 1 — memcached request latency, alone vs with netperf (plain TCP):")
	rs, err := experiments.RunFigure1(p)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderMemcached(rs))
	// CDF detail as in the figure.
	for i, r := range rs {
		fmt.Printf("\n%s CDF (µs):\n", r.Scenario)
		for _, pt := range r.Latencies.CDF(11) {
			fmt.Printf("  %6.1f%%  %10.0f\n", pt.Fraction*100, pt.Value)
		}
		writeCSV(fmt.Sprintf("fig1_cdf_%d.csv", i),
			[]string{"latency_us", "fraction"}, r.Latencies.CDFRows(200))
	}
	return nil
}

func runTable1(seed uint64) error {
	p := experiments.DefaultTable1Params()
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Table 1 — % messages later than M/B_g + d (Poisson arrivals):")
	r := experiments.RunTable1(p)
	fmt.Print(r.Render())
	var rows [][]float64
	for i, bm := range p.BurstMultiples {
		for j, bw := range p.BandwidthMultiples {
			rows = append(rows, []float64{float64(bm), bw, r.LatePct[i][j]})
		}
	}
	writeCSV("table1.csv", []string{"burst_msgs", "bw_multiple", "late_pct"}, rows)
	return nil
}

func runFig5() error {
	fmt.Println("Figure 5 — bandwidth-aware vs Silo placement of 9 x {1 Gbps, 100 KB, 1 ms}:")
	r, err := experiments.RunFigure5()
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Println("packet-level check — synchronized worst-case bursts with latency attribution:")
	rs, err := experiments.RunFigure5Sim(experiments.DefaultFigure5SimParams())
	if err != nil {
		return err
	}
	fmt.Print(rs.Render())
	if outdir != "" && len(rs.Spans) > 0 {
		path := filepath.Join(outdir, "fig5_trace.json")
		if err := obs.WriteTraceFile(path, rs.Ports, rs.Spans); err != nil {
			fmt.Fprintf(os.Stderr, "fig5 trace: %v\n", err)
		} else {
			fmt.Printf("flight trace written to %s (inspect with silo-trace)\n", path)
		}
	}
	fmt.Println("incident check — same workload unpaced under a 350 µs audited bound:")
	up := experiments.DefaultFigure5SimParams()
	up.Scheme = experiments.SchemeTCP
	up.Incidents = true
	up.AuditDelayBoundSec = 350e-6
	ru, err := experiments.RunFigure5Sim(up)
	if err != nil {
		return err
	}
	fmt.Println(ru.AuditSummary)
	if ru.Incidents != nil {
		fmt.Print(ru.Incidents.Render())
		if outdir != "" {
			ru.Incidents.Meta = &runMeta
			path := filepath.Join(outdir, "fig5_incidents.json")
			if err := ru.Incidents.WriteFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "fig5 incidents: %v\n", err)
			} else {
				fmt.Printf("incident report written to %s (inspect with silo-incident)\n", path)
			}
		}
	}
	return nil
}

func runFig10() error {
	fmt.Println("Figure 10 — pacer microbenchmark (throughput split and per-frame cost):")
	rows10 := experiments.RunFigure10(experiments.DefaultFigure10Params())
	fmt.Print(experiments.RenderFigure10(rows10))
	var rows [][]float64
	for _, r := range rows10 {
		rows = append(rows, []float64{r.RateGbps, r.DataGbps, r.VoidGbps, r.PacketsPerSec, r.NsPerPacket,
			r.PctGateAvg, r.PctGateCap, r.MeanTokenWaitUs})
	}
	writeCSV("fig10.csv", []string{"limit_gbps", "data_gbps", "void_gbps", "frames_per_s", "ns_per_frame",
		"gate_avg_pct", "gate_cap_pct", "token_wait_us"}, rows)
	return nil
}

func runFig11(duration float64, seed uint64) error {
	p := experiments.DefaultMemcachedParams()
	if duration > 0 {
		p.DurationSec = duration
	}
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Figure 11 — memcached under TCP vs Silo req1-3 (latency, guarantee, throughput):")
	rs, err := experiments.RunFigure11(p)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderMemcached(rs))
	var rows [][]float64
	for i, r := range rs {
		rows = append(rows, []float64{float64(i),
			r.Latencies.Percentile(50), r.Latencies.Percentile(99),
			r.Latencies.Percentile(99.9), r.GuaranteeUs,
			r.MemcachedThroughputRps(), r.BulkThroughputBps() * 8 / 1e9})
		writeCSV(fmt.Sprintf("fig11_cdf_%d.csv", i),
			[]string{"latency_us", "fraction"}, r.Latencies.CDFRows(200))
	}
	writeCSV("fig11.csv", []string{"scenario", "p50_us", "p99_us", "p999_us", "guarantee_us", "req_per_s", "bulk_gbps"}, rows)
	return nil
}

func runFig12(duration float64, seed uint64) error {
	p := experiments.DefaultComparisonParams()
	if duration > 0 {
		p.DurationSec = duration
	}
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Figures 12-14 and Table 4 — Silo vs TCP/DCTCP/HULL/Okto/Okto+:")
	rs := experiments.RunComparison(p)
	fmt.Print(experiments.RenderComparison(rs))
	var f12, t4 [][]float64
	for i, r := range rs {
		f12 = append(f12, []float64{float64(i),
			r.ClassALatUs.Percentile(50), r.ClassALatUs.Percentile(95),
			r.ClassALatUs.Percentile(99), float64(r.Drops)})
		t4 = append(t4, []float64{float64(i),
			100 * r.OutlierFrac(1), 100 * r.OutlierFrac(2), 100 * r.OutlierFrac(8)})
		writeCSV(fmt.Sprintf("fig12_cdf_%s.csv", r.Scheme),
			[]string{"latency_us", "fraction"}, r.ClassALatUs.CDFRows(200))
		writeCSV(fmt.Sprintf("fig13_cdf_%s.csv", r.Scheme),
			[]string{"rto_msg_pct", "fraction"}, r.RTOTenantCDF().CDFRows(100))
		writeCSV(fmt.Sprintf("fig14_cdf_%s.csv", r.Scheme),
			[]string{"normalized_latency", "fraction"}, r.ClassBNormalizedLatency().CDFRows(100))
	}
	writeCSV("fig12.csv", []string{"scheme", "p50_us", "p95_us", "p99_us", "drops"}, f12)
	writeCSV("table4.csv", []string{"scheme", "outlier_1x_pct", "outlier_2x_pct", "outlier_8x_pct"}, t4)
	return nil
}

func runFig15(seed uint64) error {
	p := experiments.DefaultScaleParams()
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Figure 15 — admitted requests at 75% / 90% occupancy:")
	pts, err := experiments.RunFigure15(p)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderScalePoints(pts))
	writeScaleCSV("fig15.csv", pts)
	return nil
}

// writeScaleCSV dumps Figure-15/16 points (placer encoded 0=locality,
// 1=oktopus, 2=silo).
func writeScaleCSV(name string, pts []experiments.ScalePoint) {
	placerIdx := map[string]float64{"locality": 0, "oktopus": 1, "silo": 2}
	var rows [][]float64
	for _, pt := range pts {
		rows = append(rows, []float64{placerIdx[pt.Placer], pt.Occupancy,
			100 * pt.Result.AdmittedFrac(), 100 * pt.Result.AvgUtilization,
			float64(pt.Result.CompletedJobs)})
	}
	writeCSV(name, []string{"placer", "occupancy", "admit_pct", "utilization_pct", "jobs"}, rows)
}

func runFig16a(seed uint64) error {
	p := experiments.DefaultScaleParams()
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Figure 16a — network utilization vs occupancy:")
	pts, err := experiments.RunFigure16a(p, []float64{0.2, 0.4, 0.6, 0.75, 0.9})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderScalePoints(pts))
	writeScaleCSV("fig16a.csv", pts)
	return nil
}

func runFig16b(seed uint64) error {
	p := experiments.DefaultScaleParams()
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Figure 16b — network utilization vs Permutation-x (90% occupancy):")
	byX, err := experiments.RunFigure16b(p, []float64{0.5, 0.75, 1, 2, 4})
	if err != nil {
		return err
	}
	xs := make([]float64, 0, len(byX))
	for x := range byX {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Printf("Permutation-%g:\n%s", x, experiments.RenderScalePoints(byX[x]))
	}
	return nil
}

func runBestEffort(duration float64, seed uint64) error {
	p := experiments.DefaultBestEffortParams()
	if duration > 0 {
		p.DurationSec = duration
	}
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("§4.4 — best-effort tenants on the low 802.1q class:")
	r, err := experiments.RunBestEffort(p)
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	return nil
}

func runBurstStressCmd() error {
	fmt.Println("Synchronized-burst stress — Figure 5's principle at runtime (Silo vs Okto+):")
	rs, err := experiments.RunBurstStressComparison(experiments.DefaultBurstStressParams())
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderBurstStress(rs))
	return nil
}

// drillVerdictCode encodes drill verdicts for the CSV artifact.
var drillVerdictCode = map[string]float64{"ok": 0, "relocated": 1, "degraded": 2, "evicted": 3}

func runFaultDrill(seed uint64) error {
	p := experiments.DefaultFailureDrillParams()
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Println("Failure drill — ToR death under admitted load: evacuation, re-admission, degraded-mode SLO accounting:")
	r, err := experiments.RunFailureDrill(p)
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	var rows [][]float64
	for _, row := range r.Rows {
		rows = append(rows, []float64{float64(row.ID), drillVerdictCode[row.Verdict],
			float64(row.RecoveryNs) / 1e6, float64(row.Messages),
			float64(row.Delivered), float64(row.Violated), float64(row.InFault)})
	}
	writeCSV("faultdrill.csv", []string{"tenant", "verdict", "recovery_ms", "messages", "delivered", "violated", "in_fault"}, rows)
	if outdir != "" && r.Incidents != nil {
		r.Incidents.Meta = &runMeta
		path := filepath.Join(outdir, "incidents.json")
		if err := r.Incidents.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "drill incidents: %v\n", err)
		} else {
			fmt.Printf("incident report written to %s (inspect with silo-incident)\n", path)
		}
	}
	if r.InvariantsErr != "" {
		return fmt.Errorf("placement invariants after recovery: %s", r.InvariantsErr)
	}
	return nil
}

func runPlaceUB(requests int, seed uint64) error {
	p := experiments.DefaultPlacementBenchParams()
	if requests > 0 {
		p.Requests = requests
	}
	if seed != 0 {
		p.Seed = seed
	}
	p.Metrics = reg
	fmt.Println("Placement microbenchmark — 100K-host datacenter, mean 49-VM tenants:")
	r, err := experiments.RunPlacementBench(p)
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	// The checked-in BENCH_placement.json is regenerated with
	// `silo-bench -run placeub -bench-json BENCH_placement.json`.
	return noteBenchRecord(r.Record())
}

func runPacerUB() error {
	fmt.Println("Pacer microbenchmark — per-frame batch-construction cost over repeated runs:")
	rec := experiments.RunPacerBench(experiments.DefaultPacerBenchParams())
	fmt.Print(rec.Render())
	return noteBenchRecord(rec)
}

func runNetsimParUB(workers int) error {
	p := experiments.DefaultNetsimParallelBenchParams()
	if workers > 0 {
		p.Workers = workers
	}
	fmt.Printf("Parallel-netsim microbenchmark — island engine on a 16-pod fabric, %d workers:\n", p.Workers)
	rec, err := experiments.RunNetsimParallelBench(p)
	if err != nil {
		return err
	}
	fmt.Print(rec.Render())
	return noteBenchRecord(rec)
}

// parscaleBoundCode encodes the winning lookahead bound for the CSV
// artifact.
var parscaleBoundCode = map[string]float64{"none": -1, "lookahead": 0, "global": 1, "horizon": 2}

// runParallelScale prints the worker-count scaling table for the
// island engine and verifies the determinism contract end to end: the
// full run summary (per-port CSV, fabric totals, guarantee audit, SLO
// report) must be byte-identical to the sequential simulator's at
// every worker count. The runtime-plane columns (stall %, straggler
// island, winning lookahead bound) explain *why* the speedup curve
// bends: they attribute each configuration's wall-clock to work vs.
// barrier waiting.
func runParallelScale(hotPod, hotFactor int) error {
	var p experiments.ParallelScaleParams
	p.HotPod, p.HotFactor = hotPod, hotFactor
	if hotFactor > 1 {
		fmt.Printf("Parallel netsim scaling — 16-pod fabric, pod %d injecting %d× the uniform load (runtime-plane imbalance study):\n",
			hotPod, hotFactor)
	} else {
		fmt.Println("Parallel netsim scaling — 16-pod fabric with per-pod islands, full telemetry attached:")
	}
	var refSummary string
	var seqPPS float64
	var rows [][]float64
	var lastAnalysis string
	fmt.Printf("%8s %14s %12s %8s %9s %8s %10s %10s\n",
		"engine", "packets/sec", "elapsed_ms", "epochs", "speedup", "stall%", "straggler", "bound")
	for _, w := range []int{0, 1, 2, 4, 8} {
		p.Workers = w
		r, err := experiments.RunParallelScale(p)
		if err != nil {
			return err
		}
		if w == 0 {
			refSummary = r.Summary
			seqPPS = r.PacketsPerSec()
		} else if r.Summary != refSummary {
			return fmt.Errorf("workers=%d: summary diverges from the sequential run", w)
		}
		name := "seq"
		stall, straggler, bound := "-", "-", "-"
		if w > 0 {
			name = fmt.Sprintf("w=%d", w)
			stall = fmt.Sprintf("%.1f", r.Runtime.MeanStallPct())
			straggler = fmt.Sprintf("i%d", r.Analysis.Straggler)
			bound = r.Runtime.Coord.WinningBound()
			lastAnalysis = r.Analysis.Render()
		}
		fmt.Printf("%8s %14.0f %12.1f %8d %8.2fx %8s %10s %10s\n",
			name, r.PacketsPerSec(), float64(r.ElapsedNs)/1e6, r.Epochs,
			r.PacketsPerSec()/seqPPS, stall, straggler, bound)
		rows = append(rows, []float64{float64(w), r.PacketsPerSec(),
			float64(r.ElapsedNs) / 1e6, float64(r.Epochs), r.PacketsPerSec() / seqPPS,
			r.Runtime.MeanStallPct(), float64(r.Analysis.Straggler),
			parscaleBoundCode[r.Runtime.Coord.WinningBound()]})
	}
	writeCSV("parscale.csv", []string{"workers", "packets_per_sec", "elapsed_ms", "epochs",
		"speedup", "stall_pct", "straggler_island", "bound"}, rows)
	if lastAnalysis != "" {
		fmt.Print(lastAnalysis)
	}
	fmt.Println("summaries byte-identical across the sequential engine and every worker count")
	return nil
}

func runRuntimeUB(workers int) error {
	p := experiments.DefaultNetsimParallelBenchParams()
	if workers > 0 {
		p.Workers = workers
	}
	fmt.Printf("Runtime-plane overhead microbenchmark — netsimpar workload with the probe and silo_runtime_* families attached, %d workers:\n", p.Workers)
	rec, err := experiments.RunRuntimeBench(p)
	if err != nil {
		return err
	}
	fmt.Print(rec.Render())
	// The checked-in BENCH_runtime.json is regenerated with
	// `silo-bench -run runtimeub -bench-json BENCH_runtime.json`.
	return noteBenchRecord(rec)
}

func runIntrospectUB() error {
	fmt.Println("Introspection-overhead microbenchmark — netsimub workload with headroom taps and envelope estimators attached:")
	rec, err := experiments.RunIntrospectBench(experiments.DefaultIntrospectBenchParams())
	if err != nil {
		return err
	}
	fmt.Print(rec.Render())
	return noteBenchRecord(rec)
}

func runIncidentUB() error {
	fmt.Println("Incident-plane microbenchmark — netsimub workload with every delivery violating and correlated into incidents:")
	rec, err := experiments.RunIncidentBench(experiments.DefaultIncidentBenchParams())
	if err != nil {
		return err
	}
	fmt.Print(rec.Render())
	// The checked-in BENCH_incident.json is regenerated with
	// `silo-bench -run incidentub -bench-json BENCH_incident.json`.
	return noteBenchRecord(rec)
}

func runNetsimUB() error {
	fmt.Println("Netsim microbenchmark — event-engine cost per simulated packet (cross-rack permutation):")
	rec, err := experiments.RunNetsimBench(experiments.DefaultNetsimBenchParams())
	if err != nil {
		return err
	}
	fmt.Print(rec.Render())
	return noteBenchRecord(rec)
}

func runWALUB() error {
	fmt.Println("WAL microbenchmark — durable control plane's append hot path (encode + write, fsync batched):")
	rec, err := experiments.RunWALBench(experiments.DefaultWALBenchParams())
	if err != nil {
		return err
	}
	fmt.Print(rec.Render())
	// The checked-in BENCH_wal.json is regenerated with
	// `silo-bench -run walub -bench-json BENCH_wal.json`.
	return noteBenchRecord(rec)
}

// runSoak drives the durable control-plane chaos soak: churn +
// crash-kill + recover in a loop, asserting zero invariant violations
// and zero overbooked ports. -duration overrides the wall-clock length
// in seconds; a non-empty report path receives the JSON verdict.
func runSoak(duration float64, seed uint64, report string) error {
	p := experiments.DefaultSoakParams()
	if duration > 0 {
		p.Duration = time.Duration(duration * float64(time.Second))
	}
	if seed != 0 {
		p.Seed = seed
	}
	fmt.Printf("Chaos soak — durable placement WAL under randomized churn and crash-kills (%.1fs):\n",
		p.Duration.Seconds())
	res, err := experiments.RunSoak(p, &runMeta)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if report != "" {
		if err := res.WriteFile(report); err != nil {
			return fmt.Errorf("soak-report: %w", err)
		}
		fmt.Printf("soak report written to %s\n", report)
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("soak found %d violations", len(res.Violations))
	}
	return nil
}
