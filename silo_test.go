package silo

import (
	"errors"
	"math"
	"testing"
)

func testDatacenter(t *testing.T) *Datacenter {
	t.Helper()
	tree, err := NewDatacenter(DatacenterConfig{
		Pods:           1,
		RacksPerPod:    2,
		ServersPerRack: 5,
		SlotsPerServer: 4,
		LinkBps:        Gbps(10),
		BufferBytes:    312e3,
		NICBufferBytes: 62.5e3,
		RackOversub:    1,
		PodOversub:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestRateHelpers(t *testing.T) {
	if Gbps(10) != 1.25e9 {
		t.Errorf("Gbps(10) = %v", Gbps(10))
	}
	if Mbps(250) != 31.25e6 {
		t.Errorf("Mbps(250) = %v", Mbps(250))
	}
}

func TestPublicAPILifecycle(t *testing.T) {
	tree := testDatacenter(t)
	ctl := NewController(tree, PlacementOptions{})
	h, err := ctl.Admit(TenantSpec{
		Name: "t", VMs: 8,
		Guarantee: Guarantee{
			BandwidthBps: Mbps(250), BurstBytes: 15e3,
			DelayBound: 1e-3, BurstRateBps: Gbps(1),
		},
		FaultDomains: 2,
	})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	bound := ctl.MessageLatencyBound(h, 10e3)
	if bound <= 1e-3 || math.IsInf(bound, 1) {
		t.Errorf("bound = %v", bound)
	}
	if err := ctl.Release(h); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestPublicAPIRejection(t *testing.T) {
	tree := testDatacenter(t)
	ctl := NewController(tree, PlacementOptions{})
	_, err := ctl.Admit(TenantSpec{
		Name: "huge", VMs: tree.Slots() + 1,
		Guarantee: Guarantee{BandwidthBps: Mbps(1)},
	})
	if !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	tree := testDatacenter(t)
	ctl := NewController(tree, PlacementOptions{})
	h, err := ctl.Admit(TenantSpec{
		Name: "e2e", VMs: 5,
		Guarantee: Guarantee{
			BandwidthBps: Mbps(250), BurstBytes: 15e3,
			DelayBound: 1e-3, BurstRateBps: Gbps(1),
		},
		FaultDomains: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(tree, NetworkOptions{PropNs: 200})
	fabric := NewFabric(nw)
	eps := ctl.Deploy(nw, fabric, h, 100, TransportOptions{})
	ctl.CoordinateHose(nw, h, AllToOne(5))
	done := 0
	for i := 1; i < 5; i++ {
		eps[i].SendMessage(h.VMIDs[0], 10_000, func(m *Message) { done++ })
	}
	nw.Sim.Run(1e9)
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if nw.TotalDrops() != 0 {
		t.Error("compliant burst dropped packets")
	}
}

func TestPublicBaselinePlacers(t *testing.T) {
	if NewOktopusPlacer(testDatacenter(t)).Name() != "oktopus" {
		t.Error("oktopus placer")
	}
	if NewLocalityPlacer(testDatacenter(t)).Name() != "locality" {
		t.Error("locality placer")
	}
}

func TestPublicPacerPrimitives(t *testing.T) {
	vm := NewPacedVM(1, PacerGuarantee{
		BandwidthBps: Gbps(1), BurstBytes: 3000, BurstRateBps: Gbps(10), MTUBytes: 1518,
	}, 0)
	for i := 0; i < 10; i++ {
		vm.Enqueue(0, 2, 1518, nil)
	}
	b := NewBatcher(Gbps(10))
	batch := b.Build(0, []*PacedVM{vm})
	if batch.DataPackets() == 0 {
		t.Error("empty batch")
	}
	if batch.VoidBytes == 0 {
		t.Error("a 1 Gbps flow on 10 GbE must produce voids")
	}
}

func TestPatternHelpers(t *testing.T) {
	if AllToOne(5).Edges() != 4 {
		t.Error("AllToOne")
	}
	if AllToAll(4).Edges() != 12 {
		t.Error("AllToAll")
	}
}
