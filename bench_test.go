// Benchmarks regenerating every table and figure of Silo's evaluation
// (one testing.B benchmark per artifact; see DESIGN.md §4) plus
// ablation benchmarks for the design choices DESIGN.md §5 calls out.
//
// Each benchmark reports domain-specific metrics via b.ReportMetric in
// addition to ns/op: e.g. BenchmarkFig12ClassA reports Silo's p99
// class-A latency, BenchmarkFig10Pacer reports void overhead.
//
// Run everything:
//
//	go test -bench=. -benchmem
package silo

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/netcal"
	"repro/internal/pacer"
	"repro/internal/placement"
	"repro/internal/tenant"
	"repro/internal/topology"
)

// BenchmarkFig1Memcached regenerates Figure 1: memcached latency CDF
// with and without competing netperf traffic.
func BenchmarkFig1Memcached(b *testing.B) {
	p := experiments.DefaultMemcachedParams()
	p.DurationSec = 0.05
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunFigure1(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].Latencies.Percentile(99), "idle-p99-µs")
		b.ReportMetric(rs[1].Latencies.Percentile(99), "contended-p99-µs")
	}
}

// BenchmarkTable1Lateness regenerates Table 1: % late messages vs
// bandwidth multiple × burst allowance.
func BenchmarkTable1Lateness(b *testing.B) {
	p := experiments.DefaultTable1Params()
	p.Messages = 20000
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1(p)
		b.ReportMetric(r.LatePct[0][0], "late-1M-1B-%")
		b.ReportMetric(r.LatePct[3][2], "late-7M-1.8B-%")
	}
}

// BenchmarkFig5Placement regenerates the Figure-5 placement example.
func BenchmarkFig5Placement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OktoWorstBytes/1e3, "okto-worst-KB")
		b.ReportMetric(r.SiloWorstBytes/1e3, "silo-worst-KB")
	}
}

// benchFig5Sim runs the packet-level Figure-5 companion at a given
// flight-recorder sampling divisor (0 = tracing off).
func benchFig5Sim(b *testing.B, sampleN int) {
	p := experiments.DefaultFigure5SimParams()
	p.TraceSampleN = sampleN
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure5Sim(p)
		if err != nil {
			b.Fatal(err)
		}
		if r.Drops != 0 {
			b.Fatalf("drops = %d, want 0", r.Drops)
		}
		b.ReportMetric(float64(r.Messages), "messages")
		if sampleN > 0 {
			b.ReportMetric(float64(r.Flight.Complete), "spans")
		}
	}
}

// BenchmarkFig5SimBaseline is the tracing-off control for the flight
// recorder overhead comparison (see BenchmarkFig5SimTraced1in64):
// the Figure-5 worst-case burst scenario simulated packet by packet.
func BenchmarkFig5SimBaseline(b *testing.B) { benchFig5Sim(b, 0) }

// BenchmarkFig5SimTraced1in64 runs the same simulation with the
// flight recorder attached at the production sampling rate (1 in 64
// packets). The acceptance bar is ≤5% ns/op overhead vs baseline.
func BenchmarkFig5SimTraced1in64(b *testing.B) { benchFig5Sim(b, 64) }

// BenchmarkFig5SimTracedAll traces every packet — the worst-case
// recorder cost, used for Figure-5 attribution summaries.
func BenchmarkFig5SimTracedAll(b *testing.B) { benchFig5Sim(b, 1) }

// BenchmarkIntrospectOverhead measures the introspection plane's
// per-packet cost: the netsimub permutation blast with headroom
// watches on every port and NIC-fed envelope estimators on every
// host (compare BENCH_introspect.json vs BENCH_netsim.json). The
// acceptance bar is 0 allocs/op on the hot taps.
func BenchmarkIntrospectOverhead(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultIntrospectBenchParams()
	p.Reps = 1
	for i := 0; i < b.N; i++ {
		rec, err := experiments.RunIntrospectBench(p)
		if err != nil {
			b.Fatal(err)
		}
		if rec.AllocsPerOp != 0 {
			b.Fatalf("introspection hot path allocates: %d allocs/op", rec.AllocsPerOp)
		}
		b.ReportMetric(float64(rec.MeanNs), "ns/pkt")
	}
}

// BenchmarkRuntimeOverhead measures the runtime plane's per-packet
// cost: the netsimpar workload with the RuntimeProbe attached and
// every silo_runtime_* family registered (compare BENCH_runtime.json
// vs BENCH_netsimpar.json). The acceptance bar is 0 allocs/op — the
// probe sites are plain counter writes and the families are pull-time
// gauge functions, so nothing on the hot path may allocate.
func BenchmarkRuntimeOverhead(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultNetsimParallelBenchParams()
	p.Reps = 1
	for i := 0; i < b.N; i++ {
		rec, err := experiments.RunRuntimeBench(p)
		if err != nil {
			b.Fatal(err)
		}
		if rec.AllocsPerOp != 0 {
			b.Fatalf("runtime plane hot path allocates: %d allocs/op", rec.AllocsPerOp)
		}
		b.ReportMetric(float64(rec.MeanNs), "ns/pkt")
	}
}

// BenchmarkFig10Pacer regenerates Figure 10: pacer throughput split
// and per-frame cost across rate limits.
func BenchmarkFig10Pacer(b *testing.B) {
	p := experiments.DefaultFigure10Params()
	p.WireSeconds = 0.01
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure10(p)
		b.ReportMetric(rows[0].VoidGbps, "void-at-1G-Gbps")
		b.ReportMetric(rows[8].PacketsPerSec/1e6, "frames-at-9G-M/s")
	}
}

// BenchmarkFig11Testbed regenerates Figure 11: the memcached testbed
// under TCP and Silo req1-3.
func BenchmarkFig11Testbed(b *testing.B) {
	p := experiments.DefaultMemcachedParams()
	p.DurationSec = 0.05
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunFigure11(p)
		if err != nil {
			b.Fatal(err)
		}
		// rs: idle, TCP, req1, req2, req3.
		b.ReportMetric(rs[1].Latencies.Percentile(99), "tcp-p99-µs")
		b.ReportMetric(rs[4].Latencies.Percentile(99), "silo-req3-p99-µs")
	}
}

// BenchmarkFig12ClassA regenerates Figures 12-14 and Table 4: the
// packet-level scheme comparison.
func BenchmarkFig12ClassA(b *testing.B) {
	p := experiments.DefaultComparisonParams()
	p.DurationSec = 0.02
	for i := 0; i < b.N; i++ {
		rs := experiments.RunComparison(p)
		for _, r := range rs {
			switch r.Scheme {
			case experiments.SchemeSilo:
				b.ReportMetric(r.ClassALatUs.Percentile(99), "silo-p99-µs")
				b.ReportMetric(100*r.OutlierFrac(1), "silo-outliers-%")
			case experiments.SchemeHULL:
				b.ReportMetric(r.ClassALatUs.Percentile(99), "hull-p99-µs")
			}
		}
	}
}

// BenchmarkFig15Admittance regenerates Figure 15: admitted tenants at
// 75% and 90% occupancy under the three placers.
func BenchmarkFig15Admittance(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultScaleParams()
	p.DurationSec = 400
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure15(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Placer == "silo" && pt.Occupancy == 0.9 {
				b.ReportMetric(100*pt.Result.AdmittedFrac(), "silo-admit-90-%")
			}
			if pt.Placer == "locality" && pt.Occupancy == 0.9 {
				b.ReportMetric(100*pt.Result.AdmittedFrac(), "locality-admit-90-%")
			}
		}
	}
}

// BenchmarkFig16Utilization regenerates Figure 16a: network
// utilization vs occupancy.
func BenchmarkFig16Utilization(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultScaleParams()
	p.DurationSec = 400
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure16a(p, []float64{0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Occupancy == 0.9 && pt.Placer == "silo" {
				b.ReportMetric(100*pt.Result.AvgUtilization, "silo-util-90-%")
			}
		}
	}
}

// BenchmarkPlacement100K regenerates the placement microbenchmark:
// per-request placement latency on a 100,000-host datacenter (paper:
// max 1.15 s over 100 K requests).
func BenchmarkPlacement100K(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultPlacementBenchParams()
	p.Requests = 100
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPlacementBench(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.MaxNs)/1e6, "max-place-ms")
		b.ReportMetric(float64(r.MeanNs)/1e6, "mean-place-ms")
	}
}

// BenchmarkPlaceRemoveChurn measures steady-state admission cost:
// interleaved Place/Remove on a warm datacenter, exercising the
// incremental per-port state and cached queue bounds that churn keeps
// invalidating.
func BenchmarkPlaceRemoveChurn(b *testing.B) {
	b.ReportAllocs()
	tree, err := topology.New(topology.Config{
		Pods: 4, RacksPerPod: 10, ServersPerRack: 40, SlotsPerServer: 8,
		LinkBps: Gbps(10), BufferBytes: 312e3, NICBufferBytes: 62.5e3,
		RackOversub: 5, PodOversub: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := placement.NewManager(tree, placement.Options{})
	spec := func(id int) tenant.Spec {
		s := tenant.Spec{
			ID: id, Name: "churn", VMs: 8 + id%12, FaultDomains: 2,
			Guarantee: tenant.Guarantee{
				BandwidthBps: Mbps(250), BurstBytes: 15e3,
				DelayBound: 1e-3, BurstRateBps: Gbps(1),
			},
		}
		if id%2 == 1 {
			s.Guarantee = tenant.Guarantee{
				BandwidthBps: Gbps(2), BurstBytes: 1.5e3, BurstRateBps: Gbps(2),
			}
		}
		return s
	}
	// Warm to steady state: admit until the first rejection.
	live := []int{}
	nextID := 1
	for {
		if _, err := m.Place(spec(nextID)); err != nil {
			break
		}
		live = append(live, nextID)
		nextID++
	}
	if len(live) < 10 {
		b.Fatalf("warmup admitted only %d tenants", len(live))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := live[i%len(live)]
		if err := m.Remove(victim); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Place(spec(nextID)); err == nil {
			live[i%len(live)] = nextID
		} else if _, err := m.Place(spec(victim)); err == nil {
			// The next spec shape did not fit the freed hole; put a
			// same-shape tenant back so the steady state holds.
			live[i%len(live)] = victim
		} else {
			live[i%len(live)] = live[len(live)-1]
			live = live[:len(live)-1]
			if len(live) == 0 {
				b.Fatal("churn drained the admitted set")
			}
		}
		nextID++
	}
	b.StopTimer()
	if err := m.VerifyInvariants(); err != nil {
		b.Fatal(err)
	}
}

// Ablation benchmarks (DESIGN.md §5).

// BenchmarkAblationHose compares admitted tenants with Silo's
// hose-model curve tightening versus naive aggregation.
func BenchmarkAblationHose(b *testing.B) {
	b.ReportAllocs()
	mkTree := func() *topology.Tree {
		tree, err := topology.New(topology.Config{
			Pods: 2, RacksPerPod: 4, ServersPerRack: 10, SlotsPerServer: 4,
			LinkBps: Gbps(10), BufferBytes: 312e3, NICBufferBytes: 62.5e3,
			RackOversub: 5, PodOversub: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		return tree
	}
	admitAll := func(m *placement.Manager) int {
		n := 0
		for id := 0; id < 200; id++ {
			spec := tenant.Spec{
				ID: id + 1, Name: "abl", VMs: 12, FaultDomains: 2,
				Guarantee: tenant.Guarantee{
					BandwidthBps: Gbps(1), BurstBytes: 15e3, BurstRateBps: Gbps(2),
				},
			}
			if _, err := m.Place(spec); err == nil {
				n++
			}
		}
		return n
	}
	for i := 0; i < b.N; i++ {
		hose := admitAll(placement.NewManager(mkTree(), placement.Options{}))
		plain := admitAll(placement.NewManager(mkTree(), placement.Options{PlainAggregation: true}))
		b.ReportMetric(float64(hose), "hose-admitted")
		b.ReportMetric(float64(plain), "plain-admitted")
	}
}

// BenchmarkAblationDelayCheck compares the paper's queue-capacity
// delay check against the live-queue-bound variant.
func BenchmarkAblationDelayCheck(b *testing.B) {
	b.ReportAllocs()
	mkTree := func() *topology.Tree {
		tree, err := topology.New(topology.Config{
			Pods: 1, RacksPerPod: 4, ServersPerRack: 10, SlotsPerServer: 4,
			LinkBps: Gbps(10), BufferBytes: 312e3, NICBufferBytes: 62.5e3,
			RackOversub: 5, PodOversub: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return tree
	}
	admitAll := func(m *placement.Manager) int {
		n := 0
		for id := 0; id < 150; id++ {
			spec := tenant.Spec{
				ID: id + 1, Name: "abl", VMs: 18, FaultDomains: 2,
				Guarantee: tenant.Guarantee{
					BandwidthBps: Mbps(250), BurstBytes: 15e3,
					DelayBound: 600e-6, BurstRateBps: Gbps(1),
				},
			}
			if _, err := m.Place(spec); err == nil {
				n++
			}
		}
		return n
	}
	for i := 0; i < b.N; i++ {
		capacity := admitAll(placement.NewManager(mkTree(), placement.Options{}))
		bound := admitAll(placement.NewManager(mkTree(), placement.Options{DelayCheckUsesBound: true}))
		b.ReportMetric(float64(capacity), "capacity-check-admitted")
		b.ReportMetric(float64(bound), "bound-check-admitted")
	}
}

// BenchmarkAblationVoid compares paced-IO batching with void packets
// against the no-void ablation (plain batching): the per-batch cost
// and the wire bunching it causes.
func BenchmarkAblationVoid(b *testing.B) {
	run := func(disable bool) (batches int, bunchedNs int64) {
		vm := pacer.NewVM(1, pacer.Guarantee{
			BandwidthBps: Gbps(2), BurstBytes: 3000, BurstRateBps: Gbps(10), MTUBytes: 1518,
		}, 0)
		for i := 0; i < 2000; i++ {
			vm.Enqueue(0, 2, 1518, nil)
		}
		batcher := pacer.NewBatcher(Gbps(10))
		batcher.DisableVoids = disable
		var cursor int64
		for {
			batch := batcher.Build(cursor, []*pacer.VM{vm})
			if len(batch.Packets) == 0 {
				break
			}
			batches++
			var prevEnd int64 = -1
			for _, p := range batch.Packets {
				if p.Void {
					continue
				}
				if prevEnd >= 0 && p.Wire == prevEnd {
					bunchedNs += int64(float64(p.Bytes) / Gbps(10) * 1e9)
				}
				prevEnd = p.Wire + int64(float64(p.Bytes)/Gbps(10)*1e9)
			}
			cursor = batch.End
		}
		return batches, bunchedNs
	}
	for i := 0; i < b.N; i++ {
		_, withVoids := run(false)
		_, without := run(true)
		b.ReportMetric(float64(withVoids)/1e3, "bunched-µs-voids")
		b.ReportMetric(float64(without)/1e3, "bunched-µs-novoids")
	}
}

// BenchmarkRealtimeJitter measures wall-clock batch punctuality of the
// real-time pacer driver on this machine — the experiment behind the
// repository's honesty note that Go userspace holds ~batch-level
// punctuality (tens of µs) rather than a kernel driver's determinism.
func BenchmarkRealtimeJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		j := pacer.MeasureRealtimeJitter(Gbps(10), Gbps(2), 100)
		b.ReportMetric(float64(j.MeanNs), "mean-late-ns")
		b.ReportMetric(float64(j.P99Ns), "p99-late-ns")
	}
}

// BenchmarkPacerEnqueue measures the raw cost of the pacing hot path:
// stamping one packet through the full bucket chain and scheduling it.
func BenchmarkPacerEnqueue(b *testing.B) {
	vm := pacer.NewVM(1, pacer.Guarantee{
		BandwidthBps: Gbps(5), BurstBytes: 15e3, BurstRateBps: Gbps(10), MTUBytes: 1518,
	}, 0)
	vm.SetDestRate(0, 2, Gbps(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Enqueue(int64(i), 2, 1518, nil)
		if i%64 == 63 {
			vm.Schedule(int64(i) + 1e9)
			for {
				if _, ok := vm.PopReady(1 << 62); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkQueueBound measures the network-calculus hot path used per
// admission check.
func BenchmarkQueueBound(b *testing.B) {
	b.ReportAllocs()
	arr := netcal.NewRateCapped(Gbps(6), 600e3, Gbps(20), 12e3)
	srv := netcal.NewRateLatency(Gbps(10), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = netcal.QueueBound(arr, srv)
	}
}

// BenchmarkHoseAllocate measures the EyeQ-style coordination round for
// a 64-VM all-to-all tenant.
func BenchmarkHoseAllocate(b *testing.B) {
	send := map[int]float64{}
	recv := map[int]float64{}
	var flows []pacer.Flow
	for i := 0; i < 64; i++ {
		send[i] = Gbps(1)
		recv[i] = Gbps(1)
	}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if i != j {
				flows = append(flows, pacer.Flow{Src: i, Dst: j})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pacer.HoseAllocate(send, recv, flows)
	}
}

// BenchmarkSimulatorPacketRate measures raw simulator throughput:
// wall-clock cost of forwarding 10k packets across a 2-hop path.
func BenchmarkSimulatorPacketRate(b *testing.B) {
	tree, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 1, ServersPerRack: 2, SlotsPerServer: 1,
		LinkBps: Gbps(10), BufferBytes: 1e6, NICBufferBytes: 1e6,
		RackOversub: 1, PodOversub: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Deep NIC queue: the whole burst is injected at t=0.
		nw := NewNetwork(tree, NetworkOptions{PropNs: 200, HostBufferBytes: 32 << 20})
		delivered := 0
		nw.Hosts[1].Deliver = func(p *NetPacket) { delivered++ }
		b.StartTimer()
		for j := 0; j < 10000; j++ {
			nw.Hosts[0].Send(&NetPacket{Src: 0, Dst: 1, Size: 1500})
		}
		nw.Sim.Run(1 << 62)
		if delivered != 10000 {
			b.Fatalf("delivered %d", delivered)
		}
	}
}
